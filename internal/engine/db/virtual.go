package db

import (
	"indbml/internal/engine/storage"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// modelCacheTable exposes the cross-query model artifact cache as
// system.model_cache: one row per live entry plus the LRU position, so
// "why did this query miss?" is answerable with a SELECT instead of a
// debugger. When the cache is disabled the table exists but is empty.
type modelCacheTable struct{ d *Database }

var modelCacheSchema = types.NewSchema(
	types.Column{Name: "model", Type: types.String},
	types.Column{Name: "device", Type: types.String},
	types.Column{Name: "version", Type: types.Int64},
	types.Column{Name: "lru_slot", Type: types.Int32},
)

func (modelCacheTable) Name() string          { return "system.model_cache" }
func (modelCacheTable) Schema() *types.Schema { return modelCacheSchema }

func (t modelCacheTable) Snapshot() ([]*vector.Batch, error) {
	b := storage.NewBatchBuilder(modelCacheSchema)
	if mc := t.d.modelCache; mc != nil {
		for _, e := range mc.entriesSnapshot() {
			b.Append(
				types.StringDatum(e.model),
				types.StringDatum(e.device),
				types.Int64Datum(int64(e.version)),
				types.Int32Datum(int32(e.slot)),
			)
		}
	}
	return b.Batches(), nil
}

// inferBatchesTable exposes the inference scheduler's recent super-batches
// as system.inference_batches: one row per packed forward pass, so
// "did my concurrent queries actually coalesce?" is a SELECT
// (requests > 1 means cross-request coalescing happened). Empty when the
// scheduler is disabled.
type inferBatchesTable struct{ d *Database }

var inferBatchesSchema = types.NewSchema(
	types.Column{Name: "batch_id", Type: types.Int64},
	types.Column{Name: "ts", Type: types.Int64}, // unix nanoseconds at launch
	types.Column{Name: "model", Type: types.String},
	types.Column{Name: "device", Type: types.String},
	types.Column{Name: "requests", Type: types.Int32},
	types.Column{Name: "rows", Type: types.Int32},
	types.Column{Name: "wait_ns", Type: types.Int64},
	types.Column{Name: "run_ns", Type: types.Int64},
)

func (inferBatchesTable) Name() string          { return "system.inference_batches" }
func (inferBatchesTable) Schema() *types.Schema { return inferBatchesSchema }

func (t inferBatchesTable) Snapshot() ([]*vector.Batch, error) {
	b := storage.NewBatchBuilder(inferBatchesSchema)
	for _, s := range t.d.sched.BatchSnapshot() {
		b.Append(
			types.Int64Datum(int64(s.ID)),
			types.Int64Datum(s.Start.UnixNano()),
			types.StringDatum(s.Model),
			types.StringDatum(s.Device),
			types.Int32Datum(int32(s.Requests)),
			types.Int32Datum(int32(s.Rows)),
			types.Int64Datum(s.WaitNS),
			types.Int64Datum(s.RunNS),
		)
	}
	return b.Batches(), nil
}
