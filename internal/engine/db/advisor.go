package db

import (
	"fmt"
	"strings"

	"indbml/internal/core/costmodel"
)

// Advisor exposes the inference cost model (the future work of the paper's
// conclusion) at the database level: given a registered model and an
// expected input cardinality, it predicts per-approach costs from the
// catalog metadata alone and recommends an execution device for the
// MODEL JOIN.
type Advisor struct {
	db     *Database
	params costmodel.Params
}

// NewAdvisor calibrates the cost model on this host (a few tens of
// milliseconds of micro-probing) and returns an advisor bound to the
// database's catalog.
func (d *Database) NewAdvisor() *Advisor {
	return &Advisor{db: d, params: costmodel.Calibrate()}
}

// NewAdvisorWithParams skips calibration and uses explicit constants.
func (d *Database) NewAdvisorWithParams(p costmodel.Params) *Advisor {
	return &Advisor{db: d, params: p}
}

// Params returns the advisor's calibrated constants.
func (a *Advisor) Params() costmodel.Params { return a.params }

// Rank predicts and orders all integration approaches for running the named
// model over `tuples` input rows.
func (a *Advisor) Rank(model string, tuples int, gpuAvailable bool) ([]costmodel.Choice, error) {
	meta, err := a.db.ModelMeta(model)
	if err != nil {
		return nil, err
	}
	return a.params.Rank(costmodel.ShapeOf(meta), tuples, gpuAvailable), nil
}

// AdviseDevice returns "cpu" or "gpu" for a MODEL JOIN of the named model
// over `tuples` rows — the Sec. 6.3 decision rule, made mechanical.
func (a *Advisor) AdviseDevice(model string, tuples int) (string, error) {
	meta, err := a.db.ModelMeta(model)
	if err != nil {
		return "", err
	}
	return a.params.Device(costmodel.ShapeOf(meta), tuples), nil
}

// ExplainCosts renders the ranking as a table, for the REPL and tooling.
func (a *Advisor) ExplainCosts(model string, tuples int, gpuAvailable bool) (string, error) {
	choices, err := a.Rank(model, tuples, gpuAvailable)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicted inference cost for model %q over %d tuples:\n", model, tuples)
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s %12s\n", "approach", "total", "build", "compute", "transfer", "engine")
	for _, c := range choices {
		fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s %12s\n",
			c.Approach, c.Cost.Total().Round(10e3), c.Cost.Build.Round(10e3),
			c.Cost.Compute.Round(10e3), c.Cost.Transfer.Round(10e3), c.Cost.Engine.Round(10e3))
	}
	return sb.String(), nil
}
