package db_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"indbml/internal/core/relmodel"
	"indbml/internal/engine/db"
	"indbml/internal/nn"
	"indbml/internal/trace"
)

// newAnalyzeDB builds a partitioned fact table and a registered model, so
// traced queries exercise the parallel (Exchange) path where partition
// instances share spans.
func newAnalyzeDB(t *testing.T) (*db.Database, int) {
	t.Helper()
	const rows = 600
	d := db.Open(db.Options{DefaultPartitions: 4, Parallelism: 4})
	makeFactTable(t, d, "fact", rows, 4, 4, 17)
	model := nn.NewDenseModel("am", 4, 8, 2, 1, 29)
	if _, err := d.RegisterModel(model, relmodel.ExportOptions{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	return d, rows
}

const analyzeQuery = "SELECT id, prediction FROM fact MODEL JOIN am"

// TestExplainAnalyzeMatchesQuery is the acceptance-criterion e2e test: the
// row count EXPLAIN ANALYZE reports at the plan root must equal the row
// count the plain SELECT returns, and the ModelJoin span must expose the
// cache verdict, the build-vs-inference split, and Sgemm accounting.
func TestExplainAnalyzeMatchesQuery(t *testing.T) {
	d, rows := newAnalyzeDB(t)

	res, err := d.Query(analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != rows {
		t.Fatalf("SELECT returned %d rows, want %d", res.Len(), rows)
	}

	// Second run via the traced path: the artifact cache now holds the
	// model, so the span must label it a hit with build time zero.
	out, qt, err := d.QueryAnalyzeContext(context.Background(), analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != rows {
		t.Fatalf("traced SELECT returned %d rows, want %d", out.Len(), rows)
	}
	if qt.Root == nil {
		t.Fatal("QueryTrace has no root span")
	}
	if got := qt.Root.Rows(); got != int64(rows) {
		t.Errorf("root span reports %d rows, want %d", got, rows)
	}
	if qt.Total() <= 0 {
		t.Error("statement total not recorded")
	}

	var mj *trace.Span
	var visit func(s *trace.Span)
	visit = func(s *trace.Span) {
		if strings.HasPrefix(s.Name, "ModelJoin") {
			mj = s
		}
		for _, c := range s.Children {
			visit(c)
		}
	}
	visit(qt.Root)
	if mj == nil {
		t.Fatalf("no ModelJoin span in trace:\n%s", qt.Render())
	}
	if mj.Rows() != int64(rows) {
		t.Errorf("ModelJoin span reports %d rows, want %d", mj.Rows(), rows)
	}
	if got := mj.Label("cache"); got != "hit" {
		t.Errorf("ModelJoin cache label = %q, want hit", got)
	}
	if v := mj.Counter("build_ns").Load(); v != 0 {
		t.Errorf("cache hit reports build_ns=%d, want 0", v)
	}
	if v := mj.Counter("infer_ns").Load(); v <= 0 {
		t.Error("ModelJoin span has no inference time")
	}
	if v := mj.Counter("sgemm_flops").Load(); v <= 0 {
		t.Error("ModelJoin span has no Sgemm FLOPs")
	}
	// The per-operator busy time must reconcile with the statement total:
	// the root physical operator is traced once, so its inclusive wall time
	// cannot exceed the total.
	if qt.Root.Wall() > qt.Total() {
		t.Errorf("root span wall %s exceeds statement total %s", qt.Root.Wall(), qt.Total())
	}

	rendered := qt.Render()
	for _, want := range []string{"ModelJoin", "rows=", "cache=hit", "build=", "infer=", "sgemm=", "Total:"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, rendered)
		}
	}
}

// TestExplainAnalyzeColdBuild checks the miss side of the verdict: the
// first query against a fresh database pays the build phase and reports
// it.
func TestExplainAnalyzeColdBuild(t *testing.T) {
	d, rows := newAnalyzeDB(t)
	out, err := d.ExplainAnalyzeContext(context.Background(), analyzeQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache=miss", "build=", "rows=" + itoa(rows)} {
		if !strings.Contains(out, want) {
			t.Errorf("cold EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestExplainAnalyzeStatement checks the SQL route: EXPLAIN ANALYZE parses
// as an ExplainStmt with Analyze set, and the db facade executes it.
func TestExplainAnalyzeStatement(t *testing.T) {
	d, _ := newAnalyzeDB(t)
	out, err := d.ExplainAnalyzeContext(context.Background(),
		"SELECT id, prediction FROM fact MODEL JOIN am ORDER BY id LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TopN") || !strings.Contains(out, "rows=10") {
		t.Errorf("EXPLAIN ANALYZE of TopN query:\n%s", out)
	}
}

// TestTracedQueriesConcurrentWithDML races traced MODEL JOIN queries
// against DML on the model table; under -race this checks that shared
// spans (one per logical node, mutated by all partition instances) and the
// cache-verdict plumbing are clean.
func TestTracedQueriesConcurrentWithDML(t *testing.T) {
	d, rows := newAnalyzeDB(t)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				out, qt, err := d.QueryAnalyzeContext(context.Background(), analyzeQuery)
				if err != nil {
					t.Error(err)
					return
				}
				if out.Len() != rows {
					t.Errorf("traced query returned %d rows, want %d", out.Len(), rows)
					return
				}
				if qt.Root.Rows() != int64(rows) {
					t.Errorf("root span rows %d, want %d", qt.Root.Rows(), rows)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := d.Exec("INSERT INTO am (layer_in, node_in, layer, node) VALUES (0, 0, 0, 0)"); err != nil {
				t.Error(err)
				return
			}
			if err := d.Exec("DELETE FROM am WHERE layer = 0 AND node_in = 0 AND node = 0"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
