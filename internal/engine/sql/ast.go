package sql

import (
	"fmt"
	"strings"
	"time"
)

// Stmt is any parsed SQL statement.
type Stmt interface{ stmt() }

// Expr is any parsed scalar expression (unbound; binding happens in the
// planner).
type Expr interface {
	fmt.Stringer
	expr()
}

// --- Statements ---

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil means a FROM-less SELECT of constants
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = no limit
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection: expression with optional alias, or a star.
type SelectItem struct {
	Star      bool
	StarTable string // qualified star: t.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	E    Expr
	Desc bool
}

// TableRef is a FROM-clause item.
type TableRef interface{ tableRef() }

// BaseTable names a stored table.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

// SubqueryRef is a parenthesized SELECT in FROM, with a mandatory alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

// JoinRef is an explicit or implicit (comma) join of two refs. Only inner
// joins exist in this dialect; a nil On means cross join.
type JoinRef struct {
	Left, Right TableRef
	On          Expr
}

func (*JoinRef) tableRef() {}

// ModelJoinRef is the paper's MODEL JOIN extension:
//
//	fact MODEL JOIN model_table
//	     [PREDICT (col, ...)]          -- input columns; default: all non-ID
//	     [USING DEVICE 'cpu'|'gpu']    -- execution device; default cpu
//
// The planner lowers it to the native ModelJoin operator (Sec. 5).
type ModelJoinRef struct {
	Fact      TableRef
	ModelName string
	Inputs    []string // explicit input/prediction columns, empty = default
	Device    string   // "", "cpu" or "gpu"
}

func (*ModelJoinRef) tableRef() {}

// CreateTableStmt creates a base table or, with Model set, a model table
// with the fixed relational model schema of Sec. 4.1 (Sec. 5.5's semantic
// table creation).
type CreateTableStmt struct {
	Name       string
	Model      bool
	Cols       []ColDef
	Partitions int    // 0 = default
	SortedBy   string // optional sorted-by column name
	// ShardBy is the hash-partitioning column from SHARD BY (col). A plain
	// (non-coordinator) engine records it as metadata only; the coordinator's
	// shard catalog uses it to scatter rows across shard daemons.
	ShardBy string
	// MetaJSON carries relational-model metadata for CREATE MODEL TABLE ...
	// META '<json>' (a serialized relmodel.Meta). The activation functions
	// per layer live only in the metadata, not the weight rows, so shipping
	// a model over plain SQL needs this clause to make the table
	// MODEL JOIN-able on the receiving engine.
	MetaJSON string
}

func (*CreateTableStmt) stmt() {}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type string
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Cols  []string // optional explicit column list
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// DeleteStmt removes rows matching Where (all rows when nil).
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// UpdateStmt assigns Exprs[i] to column Cols[i] for rows matching Where
// (all rows when nil). Assignment expressions may reference any column of
// the table (pre-update values).
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DropTableStmt drops a table.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// CreateAlertStmt declares an SLO alert rule evaluated against the
// telemetry sampler's metrics history each tick:
//
//	CREATE ALERT name ON <signal> <op> <threshold> [FOR <duration>]
//
// where <signal> is a bare metric name (its latest value) or fn(metric)
// with fn one of rate (per-second delta between adjacent samples), p50, or
// p99 (interval quantiles from histogram-bucket deltas, in the histogram's
// native unit). ALERT and FOR are soft words — plain identifiers to the
// lexer — so existing queries can keep using them as column names.
type CreateAlertStmt struct {
	Name      string
	Fn        string // "", "rate", "p50", "p99"
	Metric    string
	Op        string // ">", "<", ">=", "<="
	Threshold float64
	For       time.Duration // 0 = fire on the first true evaluation
}

func (*CreateAlertStmt) stmt() {}

// DropAlertStmt removes an alert rule by name.
type DropAlertStmt struct{ Name string }

func (*DropAlertStmt) stmt() {}

// ExplainStmt wraps a SELECT for plan display. With Analyze set (EXPLAIN
// ANALYZE) the statement is executed and the plan is annotated with
// per-operator runtime statistics.
type ExplainStmt struct {
	Select  *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// KillStmt cancels in-flight statements. KILL <query_id> cancels the one
// statement with that flight-recorder query ID (surfaced by
// system.active_queries and MsgDone). KILL ORIGIN <query_id> (Origin set)
// cancels every statement whose *origin* — the coordinator query ID stamped
// on distributed shard fragments — matches, which is how coordinator-side
// KILL reaches all fragments of a scattered query.
type KillStmt struct {
	ID     uint64
	Origin bool
}

func (*KillStmt) stmt() {}

// --- Expressions ---

// Ident is a possibly qualified column reference.
type Ident struct {
	Table string // optional qualifier
	Name  string
}

func (*Ident) expr() {}

// String implements fmt.Stringer.
func (i *Ident) String() string {
	if i.Table != "" {
		return i.Table + "." + i.Name
	}
	return i.Name
}

// NumberLit is an unparsed numeric literal (typing happens at bind time).
type NumberLit struct{ Text string }

func (*NumberLit) expr() {}

// String implements fmt.Stringer.
func (n *NumberLit) String() string { return n.Text }

// StringLit is a string literal.
type StringLit struct{ Val string }

func (*StringLit) expr() {}

// String implements fmt.Stringer. Embedded quotes are doubled, so the
// rendering re-parses to the same literal (distributed fragments are
// rendered back to SQL text before shipping to shards).
func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Val, "'", "''") + "'" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

func (*BoolLit) expr() {}

// String implements fmt.Stringer.
func (b *BoolLit) String() string {
	if b.Val {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) expr() {}

// String implements fmt.Stringer.
func (*NullLit) String() string { return "NULL" }

// BinExpr is a binary operation; Op holds the SQL spelling (+, -, *, /, %,
// =, <>, <, <=, >, >=, AND, OR).
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// String implements fmt.Stringer.
func (b *BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string
	E  Expr
}

func (*UnaryExpr) expr() {}

// String implements fmt.Stringer.
func (u *UnaryExpr) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// FuncCall is a scalar or aggregate function call; Star marks COUNT(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

func (*FuncCall) expr() {}

// String implements fmt.Stringer.
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// String implements fmt.Stringer.
func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// CastExpr is CAST(e AS type).
type CastExpr struct {
	E    Expr
	Type string
}

func (*CastExpr) expr() {}

// String implements fmt.Stringer.
func (c *CastExpr) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.Type) }

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// String implements fmt.Stringer.
func (i *IsNullExpr) String() string {
	if i.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// InExpr is e [NOT] IN (v1, v2, ...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

func (*InExpr) expr() {}

// String implements fmt.Stringer.
func (in *InExpr) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", in.E, not, strings.Join(parts, ", "))
}

// BetweenExpr is e BETWEEN lo AND hi (inclusive), used by the optimized
// layer-range predicates of Sec. 4.4.
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
	Not    bool
}

func (*BetweenExpr) expr() {}

// String implements fmt.Stringer.
func (b *BetweenExpr) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", b.E, not, b.Lo, b.Hi)
}
