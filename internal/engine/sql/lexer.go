// Package sql implements the engine's SQL front end: a hand-written lexer
// and recursive-descent parser covering the dialect the reproduction needs —
// SELECT with nested FROM subqueries, joins (comma-list, JOIN ... ON, and
// the paper's MODEL JOIN extension), WHERE, GROUP BY, ORDER BY, LIMIT,
// searched CASE, scalar functions, CREATE TABLE / CREATE MODEL TABLE and
// INSERT. The generated ML-To-SQL queries (Listings 2–4) parse with this
// grammar unmodified.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies a lexical token.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators and punctuation
	TokParam // ? placeholders (reserved for future use)
)

// Token is one lexical token with its source position for error messages.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased, identifiers keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "ASC": true, "DESC": true, "CREATE": true, "TABLE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "NULL": true, "TRUE": true,
	"FALSE": true, "JOIN": true, "ON": true, "MODEL": true, "USING": true,
	"PARTITIONS": true, "SORTED": true, "CAST": true, "UNION": true,
	"ALL": true, "DISTINCT": true, "BETWEEN": true, "IN": true, "IS": true,
	"DROP": true, "EXPLAIN": true, "DEVICE": true, "PREDICT": true,
	"HAVING": true, "DELETE": true, "UPDATE": true, "SET": true,
	"ANALYZE": true, "KILL": true, "SHARD": true, "META": true,
	"ORIGIN": true,
}

// Lex tokenizes a SQL string. It returns an error on unterminated strings
// or illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if unicode.IsDigit(rune(d)) {
					i++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '"':
			start := i
			i++
			j := i
			for j < n && input[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[i:j], Pos: start})
			i = j + 1
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';', '?':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
