package sql

import (
	"strings"
	"testing"
)

// Dotted (schema-qualified) table names flow through one helper shared by
// every statement that names a table; these tests pin its edge cases.

func baseName(t *testing.T, query string) string {
	t.Helper()
	sel, err := ParseSelect(query)
	if err != nil {
		t.Fatalf("%q: %v", query, err)
	}
	bt, ok := sel.From.(*BaseTable)
	if !ok {
		t.Fatalf("%q: FROM is %T, want *BaseTable", query, sel.From)
	}
	return bt.Name
}

func TestParseDottedNames(t *testing.T) {
	cases := []struct {
		query string
		want  string
	}{
		{"SELECT * FROM system.queries", "system.queries"},
		// Either or both parts may be quoted; the catalog name is the same.
		{`SELECT * FROM "system".queries`, "system.queries"},
		{`SELECT * FROM system."queries"`, "system.queries"},
		{`SELECT * FROM "system"."queries"`, "system.queries"},
		// A quoted identifier may itself contain the dot.
		{`SELECT * FROM "system.queries"`, "system.queries"},
		// Identifier case is preserved, not folded: SYSTEM.QUERIES is a
		// different catalog name from system.queries.
		{"SELECT * FROM SYSTEM.QUERIES", "SYSTEM.QUERIES"},
		// Soft keywords work on both sides of the dot.
		{"SELECT * FROM model.values", "model.values"},
	}
	for _, c := range cases {
		if got := baseName(t, c.query); got != c.want {
			t.Errorf("%q: name = %q, want %q", c.query, got, c.want)
		}
	}
}

func TestParseDottedNameAlias(t *testing.T) {
	sel, err := ParseSelect("SELECT q.sql FROM system.queries AS q")
	if err != nil {
		t.Fatal(err)
	}
	bt := sel.From.(*BaseTable)
	if bt.Name != "system.queries" || bt.Alias != "q" {
		t.Errorf("parsed %+v, want name system.queries alias q", bt)
	}
}

func TestParseDottedNameErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT * FROM system.",          // dangling dot
		"SELECT * FROM system..queries",  // empty middle part
		"SELECT * FROM .queries",         // missing schema part
		"SELECT * FROM system.queries.x", // at most one qualifier
	} {
		if _, err := ParseSelect(bad); err == nil {
			t.Errorf("ParseSelect(%q) should fail", bad)
		}
	}
}

// TestParseDottedNamesInDDL: CREATE/INSERT/DELETE/UPDATE/DROP accept the
// same qualified spelling, so a user table that shadows a system name can
// be managed entirely through SQL.
func TestParseDottedNamesInDDL(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE system.queries (a INTEGER)`)
	if err != nil {
		t.Fatal(err)
	}
	if ct := stmt.(*CreateTableStmt); ct.Name != "system.queries" {
		t.Errorf("CREATE name = %q", ct.Name)
	}
	stmt, err = Parse(`INSERT INTO "system".queries (a) VALUES (1)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins := stmt.(*InsertStmt); ins.Table != "system.queries" {
		t.Errorf("INSERT table = %q", ins.Table)
	}
	stmt, err = Parse(`DELETE FROM system.queries WHERE a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*DeleteStmt); del.Table != "system.queries" {
		t.Errorf("DELETE table = %q", del.Table)
	}
	stmt, err = Parse(`UPDATE system.queries SET a = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if up := stmt.(*UpdateStmt); up.Table != "system.queries" {
		t.Errorf("UPDATE table = %q", up.Table)
	}
	stmt, err = Parse(`DROP TABLE system.queries`)
	if err != nil {
		t.Fatal(err)
	}
	if dr := stmt.(*DropTableStmt); dr.Name != "system.queries" {
		t.Errorf("DROP name = %q", dr.Name)
	}
}

func TestParseKill(t *testing.T) {
	stmt, err := Parse("KILL 42")
	if err != nil {
		t.Fatal(err)
	}
	if k := stmt.(*KillStmt); k.ID != 42 {
		t.Errorf("KILL ID = %d, want 42", k.ID)
	}
	if _, err := Parse("KILL 7;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	for _, bad := range []string{"KILL", "KILL 0", "KILL abc", "KILL -1", "KILL 1 2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		} else if !strings.Contains(strings.ToLower(err.Error()), "kill") &&
			!strings.Contains(err.Error(), "expected") &&
			!strings.Contains(err.Error(), "trailing") {
			t.Errorf("Parse(%q): unexpected error %v", bad, err)
		}
	}
}
