package sql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 1.5e2 FROM t WHERE x <> 'it''s' -- comment\n AND y >= -3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "1.5e2", "FROM", "t", "WHERE", "x", "<>", "it's", "AND", "y", ">=", "-", "3", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	_ = kinds
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, "a $ b"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) should fail", bad)
		}
	}
}

func TestParseSelectBasic(t *testing.T) {
	sel, err := ParseSelect("SELECT a, b AS bee, COUNT(*) FROM t WHERE a > 3 GROUP BY a, b ORDER BY a DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Items) != 3 || sel.Items[1].Alias != "bee" {
		t.Errorf("items parsed wrong: %+v", sel.Items)
	}
	if sel.Where == nil || len(sel.GroupBy) != 2 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc || sel.Limit != 10 {
		t.Errorf("clauses parsed wrong: %+v", sel)
	}
}

func TestParseNestedSubquery(t *testing.T) {
	q := `SELECT id, s + bias AS output FROM
	       (SELECT input.id AS id, SUM(input.v * model.w_i) AS s, model.b_i AS bias
	        FROM (SELECT x AS id, y AS v FROM base) AS input, model_table AS model
	        WHERE input.id = model.node_in
	        GROUP BY input.id, model.b_i) AS t`
	sel, err := ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := sel.From.(*SubqueryRef)
	if !ok || sub.Alias != "t" {
		t.Fatalf("outer FROM is %T", sel.From)
	}
	join, ok := sub.Select.From.(*JoinRef)
	if !ok {
		t.Fatalf("inner FROM is %T", sub.Select.From)
	}
	if _, ok := join.Left.(*SubqueryRef); !ok {
		t.Errorf("join left is %T, want subquery", join.Left)
	}
	bt, ok := join.Right.(*BaseTable)
	if !ok || bt.Alias != "model" {
		t.Errorf("join right = %+v", join.Right)
	}
}

func TestParseModelJoin(t *testing.T) {
	sel, err := ParseSelect("SELECT * FROM iris MODEL JOIN iris_model PREDICT (a, b) USING DEVICE 'gpu'")
	if err != nil {
		t.Fatal(err)
	}
	mj, ok := sel.From.(*ModelJoinRef)
	if !ok {
		t.Fatalf("FROM is %T, want ModelJoinRef", sel.From)
	}
	if mj.ModelName != "iris_model" || mj.Device != "gpu" || len(mj.Inputs) != 2 {
		t.Errorf("model join parsed wrong: %+v", mj)
	}
	if _, ok := mj.Fact.(*BaseTable); !ok {
		t.Errorf("fact is %T", mj.Fact)
	}
}

func TestParseModelJoinMinimal(t *testing.T) {
	sel, err := ParseSelect("SELECT * FROM t MODEL JOIN m")
	if err != nil {
		t.Fatal(err)
	}
	mj := sel.From.(*ModelJoinRef)
	if mj.ModelName != "m" || mj.Device != "" || mj.Inputs != nil {
		t.Errorf("minimal model join parsed wrong: %+v", mj)
	}
}

func TestParseCase(t *testing.T) {
	sel, err := ParseSelect("SELECT CASE WHEN node = 0 THEN c0 WHEN node = 1 THEN c1 ELSE 0 END AS v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ce, ok := sel.Items[0].Expr.(*CaseExpr)
	if !ok || len(ce.Whens) != 2 || ce.Else == nil {
		t.Errorf("case parsed wrong: %+v", sel.Items[0].Expr)
	}
}

func TestParseCreateAndInsert(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (id BIGINT, v REAL, name VARCHAR) PARTITIONS 12 SORTED BY id")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "t" || len(ct.Cols) != 3 || ct.Partitions != 12 || ct.SortedBy != "id" {
		t.Errorf("create parsed wrong: %+v", ct)
	}
	stmt, err = Parse("CREATE MODEL TABLE m")
	if err != nil {
		t.Fatal(err)
	}
	if mt := stmt.(*CreateTableStmt); !mt.Model || mt.Name != "m" {
		t.Errorf("create model parsed wrong: %+v", mt)
	}
	stmt, err = Parse("INSERT INTO t (id, v) VALUES (1, 2.5), (2, -3)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert parsed wrong: %+v", ins)
	}
}

func TestParseBetween(t *testing.T) {
	sel, err := ParseSelect("SELECT a FROM t WHERE node BETWEEN 32 AND 63")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sel.Where.(*BetweenExpr); !ok {
		t.Errorf("where is %T", sel.Where)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	sel, err := ParseSelect("SELECT a + b * c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	top := sel.Items[0].Expr.(*BinExpr)
	if top.Op != "+" {
		t.Fatalf("top op %q", top.Op)
	}
	if r := top.R.(*BinExpr); r.Op != "*" {
		t.Errorf("mul should bind tighter, got %q", r.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM (SELECT b FROM t)", // missing subquery alias
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"INSERT INTO t VALUES",
		"CREATE TABLE t",
		"SELECT CASE END FROM t",
		"SELECT a FROM t trailing garbage ,",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ExplainStmt); !ok {
		t.Errorf("got %T", stmt)
	}
}

func TestParseSoftKeywordsAsIdents(t *testing.T) {
	// "model" is a soft keyword: usable as alias and column qualifier.
	sel, err := ParseSelect("SELECT model.node FROM weights AS model WHERE model.layer_in = -1")
	if err != nil {
		t.Fatal(err)
	}
	id, ok := sel.Items[0].Expr.(*Ident)
	if !ok || id.Table != "model" || id.Name != "node" {
		t.Errorf("qualified ident parsed wrong: %+v", sel.Items[0].Expr)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
}

func TestStringRoundTripExprs(t *testing.T) {
	// AST String() output must itself be parseable (ML-To-SQL relies on
	// textual SQL as the interchange format).
	q := "SELECT CASE WHEN a > 1 THEN b ELSE c END AS x, ABS(a - b) AS y FROM t WHERE a BETWEEN 1 AND 2"
	sel, err := ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	rendered := "SELECT " + sel.Items[0].Expr.String() + " AS x FROM t WHERE " + sel.Where.String()
	if _, err := ParseSelect(rendered); err != nil {
		t.Errorf("re-parsing rendered AST failed: %v\n%s", err, rendered)
	}
	if !strings.Contains(rendered, "BETWEEN") {
		t.Errorf("rendered: %s", rendered)
	}
}

func TestLexNumberForms(t *testing.T) {
	toks, err := Lex("1 1.5 .5 1e3 1.5e-3 2E+4")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "1.5", ".5", "1e3", "1.5e-3", "2E+4"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("token %d = %q (kind %d), want number %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestParseIsNullAndIn(t *testing.T) {
	sel, err := ParseSelect("SELECT a FROM t WHERE a IS NOT NULL AND b IN (1, 2, 3) AND c NOT IN (4)")
	if err != nil {
		t.Fatal(err)
	}
	// Walk the AND chain and count the constructs.
	var isNulls, ins int
	var visit func(e Expr)
	visit = func(e Expr) {
		switch e := e.(type) {
		case *BinExpr:
			visit(e.L)
			visit(e.R)
		case *IsNullExpr:
			isNulls++
			if !e.Not {
				t.Error("IS NOT NULL lost its NOT")
			}
		case *InExpr:
			ins++
		}
	}
	visit(sel.Where)
	if isNulls != 1 || ins != 2 {
		t.Errorf("found %d IS NULL and %d IN constructs", isNulls, ins)
	}
}

func TestParseShardByAndMeta(t *testing.T) {
	stmt, err := Parse("CREATE TABLE ev (id INTEGER, v DOUBLE) PARTITIONS 2 SHARD BY (id)")
	if err != nil {
		t.Fatal(err)
	}
	if ct := stmt.(*CreateTableStmt); ct.ShardBy != "id" || ct.Partitions != 2 {
		t.Errorf("SHARD BY parsed wrong: %+v", ct)
	}
	stmt, err = Parse("CREATE TABLE ev2 (id INTEGER) SHARD BY id")
	if err != nil {
		t.Fatal(err)
	}
	if ct := stmt.(*CreateTableStmt); ct.ShardBy != "id" {
		t.Errorf("bare SHARD BY parsed wrong: %+v", ct)
	}
	stmt, err = Parse(`CREATE MODEL TABLE m META '{"name":"m"}'`)
	if err != nil {
		t.Fatal(err)
	}
	if ct := stmt.(*CreateTableStmt); !ct.Model || ct.MetaJSON != `{"name":"m"}` {
		t.Errorf("META parsed wrong: %+v", ct)
	}
	if _, err := Parse("CREATE MODEL TABLE m SHARD BY (a)"); err == nil {
		t.Error("SHARD BY on a model table must be rejected")
	}
}

func TestParseKillOrigin(t *testing.T) {
	stmt, err := Parse("KILL 42")
	if err != nil {
		t.Fatal(err)
	}
	if k := stmt.(*KillStmt); k.ID != 42 || k.Origin {
		t.Errorf("KILL parsed wrong: %+v", k)
	}
	stmt, err = Parse("KILL ORIGIN 42")
	if err != nil {
		t.Fatal(err)
	}
	if k := stmt.(*KillStmt); k.ID != 42 || !k.Origin {
		t.Errorf("KILL ORIGIN parsed wrong: %+v", k)
	}
}

func TestParseShardAsColumnName(t *testing.T) {
	// shard/meta/origin are soft keywords — system tables use them as
	// column names (system.queries has a shard column in fleet mode).
	sel, err := ParseSelect("SELECT shard, origin_qid FROM system.queries WHERE shard = 'coordinator'")
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := sel.Items[0].Expr.(*Ident); !ok || id.Name != "shard" {
		t.Errorf("shard as column parsed wrong: %+v", sel.Items[0].Expr)
	}
}
