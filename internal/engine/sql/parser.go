package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: input}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement, rejecting other statement kinds.
func ParseSelect(input string) (*SelectStmt, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errf("expected %s, found %q", want, p.cur().Text)
}

func (p *Parser) errf(format string, args ...any) error {
	pos := p.cur().Pos
	// Show a short context window around the error position.
	lo := pos - 20
	if lo < 0 {
		lo = 0
	}
	hi := pos + 20
	if hi > len(p.src) {
		hi = len(p.src)
	}
	return fmt.Errorf("sql: %s (near offset %d: …%s…)", fmt.Sprintf(format, args...), pos, p.src[lo:hi])
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(TokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(TokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(TokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(TokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(TokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(TokKeyword, "EXPLAIN"):
		p.next()
		analyze := false
		if p.at(TokKeyword, "ANALYZE") {
			p.next()
			analyze = true
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel, Analyze: analyze}, nil
	case p.at(TokKeyword, "KILL"):
		p.next()
		origin := p.accept(TokKeyword, "ORIGIN")
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		id, perr := strconv.ParseUint(t.Text, 10, 64)
		if perr != nil || id == 0 {
			return nil, p.errf("KILL wants a positive query id, got %q", t.Text)
		}
		return &KillStmt{ID: id, Origin: origin}, nil
	default:
		return nil, p.errf("expected a statement, found %q", p.cur().Text)
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.accept(TokKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}

	if p.accept(TokKeyword, "FROM") {
		from, err := p.parseTableRefs()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokOp, "*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident '.' '*'
	if p.at(TokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		table := p.next().Text
		p.next() // '.'
		p.next() // '*'
		return SelectItem{Star: true, StarTable: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expectIdentLike()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

// expectIdentLike accepts identifiers and non-reserved keyword spellings as
// names (aliases like "output" or "model" are common in the generated SQL).
func (p *Parser) expectIdentLike() (string, error) {
	if p.at(TokIdent, "") {
		return p.next().Text, nil
	}
	if p.cur().Kind == TokKeyword {
		switch p.cur().Text {
		case "MODEL", "VALUES", "DEVICE", "PREDICT": // soft keywords
			return strings.ToLower(p.next().Text), nil
		}
	}
	return "", p.errf("expected identifier, found %q", p.cur().Text)
}

// parseTableName parses a possibly qualified table name (t, system.queries,
// "system".queries): one optional schema qualifier folded into the catalog
// lookup name, which is how the virtual system tables are addressed. Used
// everywhere a statement names a table — FROM, CREATE, INSERT, DELETE,
// UPDATE, DROP — so a user table that shadows a system name can be created
// and dropped through SQL too.
func (p *Parser) parseTableName() (string, error) {
	name, err := p.expectIdentLike()
	if err != nil {
		return "", err
	}
	if p.accept(TokOp, ".") {
		rest, err := p.expectIdentLike()
		if err != nil {
			return "", err
		}
		name = name + "." + rest
	}
	return name, nil
}

func (p *Parser) parseTableRefs() (TableRef, error) {
	left, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	for p.accept(TokOp, ",") {
		right, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Left: left, Right: right}
	}
	return left, nil
}

// parseJoinChain parses a primary ref followed by JOIN / MODEL JOIN chains.
func (p *Parser) parseJoinChain() (TableRef, error) {
	left, err := p.parsePrimaryRef()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokKeyword, "JOIN"):
			p.next()
			right, err := p.parsePrimaryRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Left: left, Right: right, On: on}
		case p.at(TokKeyword, "MODEL") && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "JOIN":
			p.next()
			p.next()
			name, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			mj := &ModelJoinRef{Fact: left, ModelName: name}
			if p.accept(TokKeyword, "PREDICT") {
				if _, err := p.expect(TokOp, "("); err != nil {
					return nil, err
				}
				for {
					col, err := p.expectIdentLike()
					if err != nil {
						return nil, err
					}
					mj.Inputs = append(mj.Inputs, col)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			}
			if p.accept(TokKeyword, "USING") {
				if _, err := p.expect(TokKeyword, "DEVICE"); err != nil {
					return nil, err
				}
				t, err := p.expect(TokString, "")
				if err != nil {
					return nil, err
				}
				mj.Device = strings.ToLower(t.Text)
			}
			left = mj
		default:
			return left, nil
		}
	}
}

func (p *Parser) parsePrimaryRef() (TableRef, error) {
	if p.accept(TokOp, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		p.accept(TokKeyword, "AS")
		alias, err := p.expectIdentLike()
		if err != nil {
			return nil, p.errf("subquery in FROM requires an alias")
		}
		return &SubqueryRef{Select: sel, Alias: alias}, nil
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ref := &BaseTable{Name: name}
	if p.accept(TokKeyword, "AS") {
		alias, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// --- expression grammar: OR > AND > NOT > comparison/BETWEEN > add > mul > unary > primary ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(TokKeyword, "IS") {
		not := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	if not := p.accept(TokKeyword, "NOT"); not || p.at(TokKeyword, "BETWEEN") || p.at(TokKeyword, "IN") {
		// [NOT] IN (list)
		if p.accept(TokKeyword, "IN") {
			if _, err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			in := &InExpr{E: l, Not: not}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return in, nil
		}
		if _, err := p.expect(TokKeyword, "BETWEEN"); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(TokOp, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "+"):
			op = "+"
		case p.accept(TokOp, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "*"):
			op = "*"
		case p.accept(TokOp, "/"):
			op = "/"
		case p.accept(TokOp, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.accept(TokOp, "+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return &NumberLit{Text: t.Text}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{Val: t.Text}, nil
	case p.accept(TokKeyword, "TRUE"):
		return &BoolLit{Val: true}, nil
	case p.accept(TokKeyword, "FALSE"):
		return &BoolLit{Val: false}, nil
	case p.accept(TokKeyword, "NULL"):
		return &NullLit{}, nil
	case p.accept(TokKeyword, "CASE"):
		return p.parseCase()
	case p.accept(TokKeyword, "CAST"):
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AS"); err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &CastExpr{E: e, Type: typ}, nil
	case p.accept(TokOp, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		// Function call?
		if p.accept(TokOp, "(") {
			fc := &FuncCall{Name: strings.ToUpper(t.Text)}
			if p.accept(TokOp, "*") {
				fc.Star = true
			} else if !p.at(TokOp, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.accept(TokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified identifier?
		if p.accept(TokOp, ".") {
			name, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			return &Ident{Table: t.Text, Name: name}, nil
		}
		return &Ident{Name: t.Text}, nil
	case t.Kind == TokKeyword && (t.Text == "MODEL" || t.Text == "DEVICE" || t.Text == "PREDICT" ||
		t.Text == "SHARD" || t.Text == "META" || t.Text == "ORIGIN"):
		// Soft keywords usable as bare column references.
		p.next()
		name := strings.ToLower(t.Text)
		if p.accept(TokOp, ".") {
			col, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			return &Ident{Table: name, Name: col}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("expected an expression, found %q", t.Text)
}

func (p *Parser) parseCase() (Expr, error) {
	c := &CaseExpr{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseTypeName() (string, error) {
	t, err := p.expectIdentLike()
	if err != nil {
		return "", err
	}
	// Swallow optional length/precision arguments: VARCHAR(20), etc.
	if p.accept(TokOp, "(") {
		for !p.at(TokOp, ")") && !p.at(TokEOF, "") {
			p.next()
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return "", err
		}
	}
	return t, nil
}

// atSoftWord reports whether the current token is the given soft keyword:
// a word the lexer leaves as a plain identifier (ALERT, FOR) so it stays
// usable as a column or table name everywhere else.
func (p *Parser) atSoftWord(word string) bool {
	return p.cur().Kind == TokIdent && strings.EqualFold(p.cur().Text, word)
}

func (p *Parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	if p.atSoftWord("ALERT") {
		return p.parseCreateAlert()
	}
	isModel := p.accept(TokKeyword, "MODEL")
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name, Model: isModel}
	if !isModel {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, ColDef{Name: col, Type: typ})
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.accept(TokKeyword, "PARTITIONS"):
			t, err := p.expect(TokNumber, "")
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(t.Text)
			if err != nil || n <= 0 {
				return nil, p.errf("invalid PARTITIONS %q", t.Text)
			}
			stmt.Partitions = n
		case p.accept(TokKeyword, "SORTED"):
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			col, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			stmt.SortedBy = col
		case p.accept(TokKeyword, "SHARD"):
			if isModel {
				return nil, p.errf("model tables are replicated, not sharded")
			}
			if _, err := p.expect(TokKeyword, "BY"); err != nil {
				return nil, err
			}
			// Parenthesized or bare single column: SHARD BY (col) / SHARD BY col.
			paren := p.accept(TokOp, "(")
			col, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			if paren {
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			}
			stmt.ShardBy = col
		case p.accept(TokKeyword, "META"):
			if !isModel {
				return nil, p.errf("META is only valid on CREATE MODEL TABLE")
			}
			t, err := p.expect(TokString, "")
			if err != nil {
				return nil, err
			}
			stmt.MetaJSON = t.Text
		default:
			return stmt, nil
		}
	}
}

func (p *Parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.accept(TokOp, "(") {
		for {
			col, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		stmt.Exprs = append(stmt.Exprs, e)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseDrop() (Stmt, error) {
	p.next() // DROP
	if p.atSoftWord("ALERT") {
		p.next()
		name, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		return &DropAlertStmt{Name: name}, nil
	}
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

// parseCreateAlert parses the tail of CREATE ALERT name ON <signal> <op>
// <threshold> [FOR <duration>]; see CreateAlertStmt for the grammar.
func (p *Parser) parseCreateAlert() (Stmt, error) {
	p.next() // ALERT
	name, err := p.expectIdentLike()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	stmt := &CreateAlertStmt{Name: name}
	sig, err := p.expectIdentLike()
	if err != nil {
		return nil, err
	}
	if p.accept(TokOp, "(") {
		fn := strings.ToLower(sig)
		switch fn {
		case "rate", "p50", "p99":
		default:
			return nil, p.errf("unknown alert function %q (want rate, p50, or p99)", sig)
		}
		stmt.Fn = fn
		m, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		stmt.Metric = m
	} else {
		stmt.Metric = sig
	}
	op := p.cur()
	if op.Kind != TokOp || (op.Text != ">" && op.Text != "<" && op.Text != ">=" && op.Text != "<=") {
		return nil, p.errf("expected a comparison operator (> < >= <=), found %q", op.Text)
	}
	p.next()
	stmt.Op = op.Text
	neg := p.accept(TokOp, "-")
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return nil, err
	}
	thr, perr := strconv.ParseFloat(t.Text, 64)
	if perr != nil {
		return nil, p.errf("invalid alert threshold %q", t.Text)
	}
	if neg {
		thr = -thr
	}
	stmt.Threshold = thr
	if p.atSoftWord("FOR") {
		p.next()
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		stmt.For = d
	}
	return stmt, nil
}

// parseDuration accepts 10s / 500ms / 1m30s (lexed as number + unit
// identifier), a bare number of seconds, or a quoted Go duration string.
func (p *Parser) parseDuration() (time.Duration, error) {
	if p.cur().Kind == TokString {
		d, err := time.ParseDuration(p.next().Text)
		if err != nil || d < 0 {
			return 0, p.errf("invalid duration: %v", err)
		}
		return d, nil
	}
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, err
	}
	if p.cur().Kind == TokIdent {
		d, derr := time.ParseDuration(t.Text + p.next().Text)
		if derr != nil || d < 0 {
			return 0, p.errf("invalid duration %q", t.Text)
		}
		return d, nil
	}
	secs, perr := strconv.ParseFloat(t.Text, 64)
	if perr != nil || secs < 0 {
		return 0, p.errf("invalid duration %q", t.Text)
	}
	return time.Duration(secs * float64(time.Second)), nil
}
