package sql

import (
	"testing"
	"time"
)

func TestParseCreateAlert(t *testing.T) {
	cases := []struct {
		in   string
		want CreateAlertStmt
	}{
		{"CREATE ALERT hot ON queue_depth > 5 FOR 2s",
			CreateAlertStmt{Name: "hot", Metric: "queue_depth", Op: ">", Threshold: 5, For: 2 * time.Second}},
		{"create alert qps on rate(reqs_total) >= 0.5 for 500ms",
			CreateAlertStmt{Name: "qps", Fn: "rate", Metric: "reqs_total", Op: ">=", Threshold: 0.5, For: 500 * time.Millisecond}},
		{"CREATE ALERT slow ON p99(vectordb_statement_seconds) > 0.25 FOR 1m30s",
			CreateAlertStmt{Name: "slow", Fn: "p99", Metric: "vectordb_statement_seconds", Op: ">", Threshold: 0.25, For: 90 * time.Second}},
		{"CREATE ALERT mid ON P50(lat) <= -1.5",
			CreateAlertStmt{Name: "mid", Fn: "p50", Metric: "lat", Op: "<=", Threshold: -1.5}},
		{"CREATE ALERT s ON x < 3 FOR '2h45m'",
			CreateAlertStmt{Name: "s", Metric: "x", Op: "<", Threshold: 3, For: 2*time.Hour + 45*time.Minute}},
		{"CREATE ALERT bare ON x > 1 FOR 2;", // bare number = seconds
			CreateAlertStmt{Name: "bare", Metric: "x", Op: ">", Threshold: 1, For: 2 * time.Second}},
	}
	for _, c := range cases {
		stmt, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		got, ok := stmt.(*CreateAlertStmt)
		if !ok {
			t.Errorf("Parse(%q) = %T, want *CreateAlertStmt", c.in, stmt)
			continue
		}
		if *got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, *got, c.want)
		}
	}
}

func TestParseCreateAlertErrors(t *testing.T) {
	bad := []string{
		"CREATE ALERT",                            // no name
		"CREATE ALERT a queue_depth > 5",          // missing ON
		"CREATE ALERT a ON avg(x) > 5",            // unknown function
		"CREATE ALERT a ON x ! 5",                 // bad operator
		"CREATE ALERT a ON x > bananas",           // non-numeric threshold
		"CREATE ALERT a ON x > 5 FOR -3s",         // negative duration
		"CREATE ALERT a ON x > 5 FOR 'bogus'",     // unparsable duration
		"CREATE ALERT a ON rate(x > 5",            // unclosed paren
		"CREATE ALERT a ON x > 5 trailing_extras", // trailing input
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}

func TestParseDropAlert(t *testing.T) {
	stmt, err := Parse("DROP ALERT hot")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := stmt.(*DropAlertStmt); !ok || got.Name != "hot" {
		t.Fatalf("got %#v, want DropAlertStmt{hot}", stmt)
	}
	if _, err := Parse("DROP ALERT"); err == nil {
		t.Error("DROP ALERT without a name: want error")
	}
}

// TestAlertSoftWords: ALERT and FOR stay plain identifiers everywhere
// else, so existing schemas using them as column or table names keep
// parsing.
func TestAlertSoftWords(t *testing.T) {
	for _, q := range []string{
		"SELECT alert, for FROM t",
		"SELECT * FROM alert WHERE for > 3",
		"CREATE TABLE alert (for INT, alert TEXT)",
		"DROP TABLE alert",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v (ALERT/FOR must stay usable as identifiers)", q, err)
		}
	}
}
