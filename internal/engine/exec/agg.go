package exec

import (
	"fmt"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// AggFunc identifies an aggregate function.
type AggFunc uint8

// Supported aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggCountStar
	AggAvg
	AggMin
	AggMax
)

// ParseAggFunc resolves an aggregate function name.
func ParseAggFunc(name string) (AggFunc, bool) {
	switch name {
	case "SUM", "sum":
		return AggSum, true
	case "COUNT", "count":
		return AggCount, true
	case "AVG", "avg":
		return AggAvg, true
	case "MIN", "min":
		return AggMin, true
	case "MAX", "max":
		return AggMax, true
	}
	return 0, false
}

// AggSpec is one aggregate column: Func applied to Arg (nil for COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr
	Name string
}

// resultType returns the output type of the aggregate.
func (a AggSpec) resultType() types.T {
	switch a.Func {
	case AggCount, AggCountStar:
		return types.Int64
	case AggAvg:
		return types.Float64
	default:
		return a.Arg.Type()
	}
}

// aggState accumulates one aggregate for one group. Sums accumulate in
// float64 for numeric stability (as analytical engines widen accumulators)
// and are narrowed to the output type on emit.
type aggState struct {
	sum    float64
	isum   int64
	count  int64
	minmax types.Datum
}

func (s *aggState) update(spec AggSpec, v *vector.Vector, r int) {
	switch spec.Func {
	case AggCountStar:
		s.count++
	case AggCount:
		if !v.NullAt(r) {
			s.count++
		}
	case AggSum, AggAvg:
		if v.NullAt(r) {
			return
		}
		s.count++
		if v.Type().IsInteger() {
			s.isum += v.AsInt64(r)
		} else {
			s.sum += v.AsFloat64(r)
		}
	case AggMin:
		if v.NullAt(r) {
			return
		}
		d := v.Datum(r)
		if s.count == 0 || d.Compare(s.minmax) < 0 {
			s.minmax = d
		}
		s.count++
	case AggMax:
		if v.NullAt(r) {
			return
		}
		d := v.Datum(r)
		if s.count == 0 || d.Compare(s.minmax) > 0 {
			s.minmax = d
		}
		s.count++
	}
}

func (s *aggState) result(spec AggSpec) types.Datum {
	t := spec.resultType()
	switch spec.Func {
	case AggCount, AggCountStar:
		return types.Int64Datum(s.count)
	case AggSum:
		if s.count == 0 {
			return types.NullDatum(t)
		}
		switch t {
		case types.Int32:
			return types.Int32Datum(int32(s.isum))
		case types.Int64:
			return types.Int64Datum(s.isum)
		case types.Float32:
			return types.Float32Datum(float32(s.sum))
		default:
			return types.Float64Datum(s.sum)
		}
	case AggAvg:
		if s.count == 0 {
			return types.NullDatum(t)
		}
		total := s.sum
		if spec.Arg.Type().IsInteger() {
			total = float64(s.isum)
		}
		return types.Float64Datum(total / float64(s.count))
	default:
		if s.count == 0 {
			return types.NullDatum(t)
		}
		return s.minmax
	}
}

// aggSchema builds the output schema: group columns then aggregate columns.
func aggSchema(groupBy []expr.Expr, groupNames []string, aggs []AggSpec) (*types.Schema, error) {
	if len(groupBy) != len(groupNames) {
		return nil, fmt.Errorf("exec: %d group expressions but %d names", len(groupBy), len(groupNames))
	}
	cols := make([]types.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols = append(cols, types.Column{Name: groupNames[i], Type: g.Type()})
	}
	for _, a := range aggs {
		if a.Func != AggCountStar && a.Arg == nil {
			return nil, fmt.Errorf("exec: aggregate %s requires an argument", a.Name)
		}
		if (a.Func == AggSum || a.Func == AggAvg) && !a.Arg.Type().IsNumeric() {
			return nil, fmt.Errorf("exec: aggregate %s requires a numeric argument, got %s", a.Name, a.Arg.Type())
		}
		cols = append(cols, types.Column{Name: a.Name, Type: a.resultType()})
	}
	return types.NewSchema(cols...), nil
}

// HashAggregate is the generic grouping operator: it materializes a hash
// table over the full input — a pipeline breaker, which is exactly the
// memory-footprint cost of ML-To-SQL the paper discusses (Sec. 4.4), and
// what the ordered variant below removes.
type HashAggregate struct {
	Child      Operator
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []AggSpec

	schema *types.Schema
	keyer  *keyer

	groupRows *vector.Batch // first-seen group key values
	states    [][]aggState  // per group, per agg
	intIdx    map[intKey]int
	byteIdx   map[string]int
	keyBuf    []byte
	emitPos   int
	// PeakGroups is exposed for the memory experiments: the number of
	// simultaneously held groups.
	PeakGroups int
}

// NewHashAggregate constructs a hash aggregation.
func NewHashAggregate(child Operator, groupBy []expr.Expr, groupNames []string, aggs []AggSpec) (*HashAggregate, error) {
	schema, err := aggSchema(groupBy, groupNames, aggs)
	if err != nil {
		return nil, err
	}
	return &HashAggregate{Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs, schema: schema}, nil
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *types.Schema { return h.schema }

// Open implements Operator: it consumes the entire child input.
func (h *HashAggregate) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	h.keyer = newKeyer(h.GroupBy)
	groupSchema := make([]types.Column, len(h.GroupBy))
	for i, g := range h.GroupBy {
		groupSchema[i] = types.Column{Name: h.GroupNames[i], Type: g.Type()}
	}
	h.groupRows = vector.NewBatch(types.NewSchema(groupSchema...), vector.Size)
	h.states = nil
	h.emitPos = 0
	if h.keyer.intFast {
		h.intIdx = make(map[intKey]int)
	} else {
		h.byteIdx = make(map[string]int)
	}

	for {
		b, err := h.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keys, err := h.keyer.evalKeys(b)
		if err != nil {
			return err
		}
		args := make([]*vector.Vector, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Arg != nil {
				if args[i], err = a.Arg.Eval(b); err != nil {
					return err
				}
			}
		}
		for r := 0; r < b.Len(); r++ {
			var gi int
			var ok bool
			if h.keyer.intFast {
				k := intKeyAt(keys, r)
				gi, ok = h.intIdx[k]
				if !ok {
					gi = len(h.states)
					h.intIdx[k] = gi
				}
			} else {
				h.keyBuf = byteKeyAt(keys, r, h.keyBuf[:0])
				gi, ok = h.byteIdx[string(h.keyBuf)]
				if !ok {
					gi = len(h.states)
					h.byteIdx[string(h.keyBuf)] = gi
				}
			}
			if !ok {
				h.states = append(h.states, make([]aggState, len(h.Aggs)))
				for c, kv := range keys {
					h.groupRows.Vecs[c].AppendDatum(kv.Datum(r))
				}
			}
			st := h.states[gi]
			for i := range h.Aggs {
				st[i].update(h.Aggs[i], args[i], r)
			}
		}
	}
	if len(h.GroupBy) == 0 && len(h.states) == 0 {
		// A scalar aggregate over an empty input still yields one row
		// (COUNT = 0, SUM = NULL), per SQL.
		h.states = append(h.states, make([]aggState, len(h.Aggs)))
	}
	h.groupRows.SetLen(len(h.states))
	h.PeakGroups = len(h.states)
	return nil
}

// Next implements Operator, emitting materialized groups in batches.
func (h *HashAggregate) Next() (*vector.Batch, error) {
	if h.emitPos >= len(h.states) {
		return nil, nil
	}
	n := len(h.states) - h.emitPos
	if n > vector.Size {
		n = vector.Size
	}
	out := vector.NewBatch(h.schema, n)
	sel := make([]int, n)
	for i := range sel {
		sel[i] = h.emitPos + i
	}
	for c := range h.GroupBy {
		out.Vecs[c].CopyFrom(h.groupRows.Vecs[c], sel)
	}
	base := len(h.GroupBy)
	for i := range h.Aggs {
		for r := 0; r < n; r++ {
			out.Vecs[base+i].AppendDatum(h.states[h.emitPos+r][i].result(h.Aggs[i]))
		}
	}
	out.SetLen(n)
	h.emitPos += n
	return out, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.states, h.intIdx, h.byteIdx, h.groupRows = nil, nil, nil, nil
	return h.Child.Close()
}

// OrderedAggregate is the streaming grouping operator of Sec. 4.4: assuming
// the input arrives sorted on the grouping key, a group is complete the
// moment the key changes, so only one group's state is held at a time and
// the operator pipelines with constant memory. ML-To-SQL's optimizer plants
// it when the sort-order analysis proves the aggregation input is clustered
// on the grouping keys.
type OrderedAggregate struct {
	Child      Operator
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []AggSpec

	schema  *types.Schema
	cur     []types.Datum
	curSet  bool
	states  []aggState
	out     *vector.Batch
	done    bool
	pending *vector.Batch
}

// NewOrderedAggregate constructs an order-based aggregation. Correct results
// require the child to emit rows clustered by the grouping expressions.
func NewOrderedAggregate(child Operator, groupBy []expr.Expr, groupNames []string, aggs []AggSpec) (*OrderedAggregate, error) {
	schema, err := aggSchema(groupBy, groupNames, aggs)
	if err != nil {
		return nil, err
	}
	return &OrderedAggregate{Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs, schema: schema}, nil
}

// Schema implements Operator.
func (o *OrderedAggregate) Schema() *types.Schema { return o.schema }

// Open implements Operator.
func (o *OrderedAggregate) Open() error {
	o.cur = make([]types.Datum, len(o.GroupBy))
	o.curSet, o.done = false, false
	o.states = make([]aggState, len(o.Aggs))
	o.pending = vector.NewBatch(o.schema, vector.Size)
	return o.Child.Open()
}

func (o *OrderedAggregate) flushGroup() {
	row := make([]types.Datum, 0, o.schema.Len())
	row = append(row, o.cur...)
	for i := range o.Aggs {
		row = append(row, o.states[i].result(o.Aggs[i]))
	}
	_ = o.pending.AppendRow(row...)
	o.states = make([]aggState, len(o.Aggs))
}

// Next implements Operator.
func (o *OrderedAggregate) Next() (*vector.Batch, error) {
	if o.done {
		return nil, nil
	}
	for {
		b, err := o.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if o.curSet {
				o.flushGroup()
				o.curSet = false
			}
			o.done = true
			if o.pending.Len() > 0 {
				out := o.pending
				o.pending = vector.NewBatch(o.schema, vector.Size)
				return out, nil
			}
			return nil, nil
		}
		keys := make([]*vector.Vector, len(o.GroupBy))
		for i, g := range o.GroupBy {
			if keys[i], err = g.Eval(b); err != nil {
				return nil, err
			}
		}
		args := make([]*vector.Vector, len(o.Aggs))
		for i, a := range o.Aggs {
			if a.Arg != nil {
				if args[i], err = a.Arg.Eval(b); err != nil {
					return nil, err
				}
			}
		}
		for r := 0; r < b.Len(); r++ {
			changed := !o.curSet
			for c := range keys {
				if o.curSet && keys[c].Datum(r).Compare(o.cur[c]) != 0 {
					changed = true
					break
				}
			}
			if changed {
				if o.curSet {
					o.flushGroup()
				}
				for c := range keys {
					o.cur[c] = keys[c].Datum(r)
				}
				o.curSet = true
			}
			for i := range o.Aggs {
				o.states[i].update(o.Aggs[i], args[i], r)
			}
		}
		if o.pending.Len() >= vector.Size {
			out := o.pending
			o.pending = vector.NewBatch(o.schema, vector.Size)
			return out, nil
		}
	}
}

// Close implements Operator.
func (o *OrderedAggregate) Close() error { return o.Child.Close() }
