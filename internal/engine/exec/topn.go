package exec

import (
	"container/heap"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// TopN returns the first n rows under the sort keys without materializing
// the whole input: it keeps a bounded heap of the current best n rows. The
// planner fuses ORDER BY + LIMIT into this operator, turning the paper's
// "top suspicious payments" style queries from a full sort into a streaming
// pass.
type TopN struct {
	Child Operator
	Keys  []SortKey
	N     int

	rows    *rowHeap
	emitPos int
	sorted  [][]types.Datum
	schema  *types.Schema
}

// NewTopN constructs the operator.
func NewTopN(child Operator, keys []SortKey, n int) *TopN {
	return &TopN{Child: child, Keys: keys, N: n, schema: child.Schema()}
}

// Schema implements Operator.
func (t *TopN) Schema() *types.Schema { return t.schema }

// rowHeap is a max-heap under the sort order: the root is the *worst* kept
// row, evicted whenever a better one arrives.
type rowHeap struct {
	keys []SortKey
	// rows[i] holds the key datums followed by the full row datums.
	rows [][]types.Datum
	nkey int
}

func (h *rowHeap) Len() int { return len(h.rows) }

func (h *rowHeap) Less(i, j int) bool { return h.after(h.rows[i], h.rows[j]) }

// after reports whether row a sorts after row b (a is worse).
func (h *rowHeap) after(a, b []types.Datum) bool {
	for k := range h.keys {
		c := a[k].Compare(b[k])
		if c == 0 {
			continue
		}
		if h.keys[k].Desc {
			return c < 0
		}
		return c > 0
	}
	return false
}

func (h *rowHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }

// Push implements heap.Interface.
func (h *rowHeap) Push(x any) { h.rows = append(h.rows, x.([]types.Datum)) }

// Pop implements heap.Interface.
func (h *rowHeap) Pop() any {
	last := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return last
}

// Open implements Operator: it drains the child keeping only the best N.
func (t *TopN) Open() error {
	if err := t.Child.Open(); err != nil {
		return err
	}
	t.rows = &rowHeap{keys: t.Keys, nkey: len(t.Keys)}
	t.emitPos = 0
	t.sorted = nil
	for {
		b, err := t.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyVecs := make([]*vector.Vector, len(t.Keys))
		for i, k := range t.Keys {
			if keyVecs[i], err = k.E.Eval(b); err != nil {
				return err
			}
		}
		for r := 0; r < b.Len(); r++ {
			entry := make([]types.Datum, 0, len(t.Keys)+t.schema.Len())
			for _, kv := range keyVecs {
				entry = append(entry, kv.Datum(r))
			}
			entry = append(entry, b.Row(r)...)
			if t.rows.Len() < t.N {
				heap.Push(t.rows, entry)
				continue
			}
			if t.N > 0 && t.rows.after(t.rows.rows[0], entry) {
				t.rows.rows[0] = entry
				heap.Fix(t.rows, 0)
			}
		}
	}
	// Extract in reverse (heap pops worst-first).
	t.sorted = make([][]types.Datum, t.rows.Len())
	for i := len(t.sorted) - 1; i >= 0; i-- {
		t.sorted[i] = heap.Pop(t.rows).([]types.Datum)
	}
	return nil
}

// Next implements Operator.
func (t *TopN) Next() (*vector.Batch, error) {
	if t.emitPos >= len(t.sorted) {
		return nil, nil
	}
	n := len(t.sorted) - t.emitPos
	if n > vector.Size {
		n = vector.Size
	}
	out := vector.NewBatch(t.schema, n)
	for i := 0; i < n; i++ {
		row := t.sorted[t.emitPos+i][len(t.Keys):]
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	t.emitPos += n
	return out, nil
}

// Close implements Operator.
func (t *TopN) Close() error {
	t.rows, t.sorted = nil, nil
	return t.Child.Close()
}
