package exec

import (
	"encoding/binary"
	"math"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// keyer encodes the key columns of a row into a comparable value for hash
// joins and hash aggregation. Two implementations exist: a fast path for up
// to two integer keys (the shape of every join and grouping key in the
// generated ML queries: (ID, Node), (Layer_in, Node_in), …) using a
// [2]int64 map key with no allocation, and a generic byte-encoded fallback.
type keyer struct {
	exprs   []expr.Expr
	intFast bool
}

func newKeyer(exprs []expr.Expr) *keyer {
	k := &keyer{exprs: exprs, intFast: len(exprs) <= 2}
	for _, e := range exprs {
		if !e.Type().IsInteger() {
			k.intFast = false
		}
	}
	return k
}

// intKey is the fast-path composite key.
type intKey [2]int64

// evalKeys evaluates the key expressions over a batch.
func (k *keyer) evalKeys(b *vector.Batch) ([]*vector.Vector, error) {
	vecs := make([]*vector.Vector, len(k.exprs))
	for i, e := range k.exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	return vecs, nil
}

// intKeyAt builds the fast-path key for row r; only valid when intFast.
func intKeyAt(vecs []*vector.Vector, r int) intKey {
	var key intKey
	for i, v := range vecs {
		if v.NullAt(r) {
			key[i] = math.MinInt64 + 1 // distinct-from-everything sentinel
			continue
		}
		key[i] = v.AsInt64(r)
	}
	return key
}

// byteKeyAt appends the generic encoded key for row r to dst and returns it.
func byteKeyAt(vecs []*vector.Vector, r int, dst []byte) []byte {
	for _, v := range vecs {
		if v.NullAt(r) {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		switch v.Type() {
		case types.Bool:
			if v.Bools()[r] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case types.Int32:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Int32s()[r]))
		case types.Int64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int64s()[r]))
		case types.Float32:
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v.Float32s()[r]))
		case types.Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float64s()[r]))
		case types.String:
			s := v.Strings()[r]
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}
