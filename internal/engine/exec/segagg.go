package exec

import (
	"fmt"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// SegmentedAggregate is the engine's realization of the paper's pipelined
// aggregation (Sec. 4.4): when the input stream is *clustered* on one of the
// grouping expressions (the fact table's unique ID flowing through
// order-preserving joins), a group can never span two clusters. The
// operator therefore holds only the groups of the current cluster — layer
// width many, not fact-table-size many — and flushes them whenever the
// clustered key changes. Memory is O(groups per segment) instead of
// O(total groups), and execution pipelines.
type SegmentedAggregate struct {
	Child      Operator
	GroupBy    []expr.Expr
	GroupNames []string
	Aggs       []AggSpec
	// PrefixIdx is the index within GroupBy of the clustered expression.
	PrefixIdx int

	schema *types.Schema

	segKey    types.Datum
	segSet    bool
	groupKeys *vector.Batch
	states    [][]aggState
	intIdx    map[intKey]int
	byteIdx   map[string]int
	keyer     *keyer
	keyBuf    []byte
	pending   *vector.Batch
	done      bool
	// PeakGroups records the maximum number of simultaneously held groups,
	// for the memory experiments.
	PeakGroups int
}

// NewSegmentedAggregate constructs a segmented aggregation. prefixIdx names
// the grouping expression the input is clustered by.
func NewSegmentedAggregate(child Operator, groupBy []expr.Expr, groupNames []string, aggs []AggSpec, prefixIdx int) (*SegmentedAggregate, error) {
	if prefixIdx < 0 || prefixIdx >= len(groupBy) {
		return nil, fmt.Errorf("exec: segmented aggregate prefix index %d out of range", prefixIdx)
	}
	schema, err := aggSchema(groupBy, groupNames, aggs)
	if err != nil {
		return nil, err
	}
	return &SegmentedAggregate{
		Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs,
		PrefixIdx: prefixIdx, schema: schema,
	}, nil
}

// Schema implements Operator.
func (s *SegmentedAggregate) Schema() *types.Schema { return s.schema }

// Open implements Operator.
func (s *SegmentedAggregate) Open() error {
	s.keyer = newKeyer(s.GroupBy)
	s.segSet, s.done = false, false
	s.resetSegment()
	s.pending = vector.NewBatch(s.schema, vector.Size)
	s.PeakGroups = 0
	return s.Child.Open()
}

func (s *SegmentedAggregate) resetSegment() {
	groupSchema := make([]types.Column, len(s.GroupBy))
	for i, g := range s.GroupBy {
		groupSchema[i] = types.Column{Name: s.GroupNames[i], Type: g.Type()}
	}
	s.groupKeys = vector.NewBatch(types.NewSchema(groupSchema...), 16)
	s.states = s.states[:0]
	if s.keyer.intFast {
		s.intIdx = make(map[intKey]int, 16)
	} else {
		s.byteIdx = make(map[string]int, 16)
	}
}

// flushSegment emits all groups of the finished segment into pending.
func (s *SegmentedAggregate) flushSegment() {
	if len(s.states) > s.PeakGroups {
		s.PeakGroups = len(s.states)
	}
	for gi, st := range s.states {
		row := make([]types.Datum, 0, s.schema.Len())
		for c := range s.GroupBy {
			row = append(row, s.groupKeys.Vecs[c].Datum(gi))
		}
		for i := range s.Aggs {
			row = append(row, st[i].result(s.Aggs[i]))
		}
		_ = s.pending.AppendRow(row...)
	}
	s.resetSegment()
}

// Next implements Operator.
func (s *SegmentedAggregate) Next() (*vector.Batch, error) {
	if s.done {
		return nil, nil
	}
	for {
		b, err := s.Child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if s.segSet {
				s.flushSegment()
				s.segSet = false
			}
			s.done = true
			if s.pending.Len() > 0 {
				out := s.pending
				s.pending = vector.NewBatch(s.schema, vector.Size)
				return out, nil
			}
			return nil, nil
		}
		keys, err := s.keyer.evalKeys(b)
		if err != nil {
			return nil, err
		}
		args := make([]*vector.Vector, len(s.Aggs))
		for i, a := range s.Aggs {
			if a.Arg != nil {
				if args[i], err = a.Arg.Eval(b); err != nil {
					return nil, err
				}
			}
		}
		for r := 0; r < b.Len(); r++ {
			seg := keys[s.PrefixIdx].Datum(r)
			if !s.segSet || seg.Compare(s.segKey) != 0 {
				if s.segSet {
					s.flushSegment()
				}
				s.segKey, s.segSet = seg, true
			}
			var gi int
			var ok bool
			if s.keyer.intFast {
				k := intKeyAt(keys, r)
				gi, ok = s.intIdx[k]
				if !ok {
					gi = len(s.states)
					s.intIdx[k] = gi
				}
			} else {
				s.keyBuf = byteKeyAt(keys, r, s.keyBuf[:0])
				gi, ok = s.byteIdx[string(s.keyBuf)]
				if !ok {
					gi = len(s.states)
					s.byteIdx[string(s.keyBuf)] = gi
				}
			}
			if !ok {
				s.states = append(s.states, make([]aggState, len(s.Aggs)))
				for c, kv := range keys {
					s.groupKeys.Vecs[c].AppendDatum(kv.Datum(r))
				}
			}
			st := s.states[gi]
			for i := range s.Aggs {
				st[i].update(s.Aggs[i], args[i], r)
			}
		}
		if s.pending.Len() >= vector.Size {
			out := s.pending
			s.pending = vector.NewBatch(s.schema, vector.Size)
			return out, nil
		}
	}
}

// Close implements Operator.
func (s *SegmentedAggregate) Close() error {
	s.states, s.intIdx, s.byteIdx, s.groupKeys = nil, nil, nil, nil
	return s.Child.Close()
}
