package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

func intBatch(name string, vals ...int64) (*types.Schema, *vector.Batch) {
	schema := types.NewSchema(types.Column{Name: name, Type: types.Int64})
	b := vector.NewBatch(schema, len(vals))
	for _, v := range vals {
		_ = b.AppendRow(types.Int64Datum(v))
	}
	return schema, b
}

func twoColBatch(n int, f func(i int) (int64, float64)) (*types.Schema, *vector.Batch) {
	schema := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	b := vector.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		k, v := f(i)
		_ = b.AppendRow(types.Int64Datum(k), types.Float64Datum(v))
	}
	return schema, b
}

func colRef(s *types.Schema, name string) *expr.ColRef {
	i, ok := s.Lookup(name)
	if !ok {
		panic("no column " + name)
	}
	return expr.NewColRef(i, name, s.Col(i).Type)
}

func TestFilter(t *testing.T) {
	schema, b := intBatch("x", 1, 2, 3, 4, 5, 6)
	pred, err := expr.NewBinOp(expr.OpGt, colRef(schema, "x"), expr.NewConst(types.Int64Datum(3)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(NewValues(schema, b), pred)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("filter kept %d rows, want 3", out.Len())
	}
	for i, want := range []int64{4, 5, 6} {
		if out.Vecs[0].Int64s()[i] != want {
			t.Errorf("row %d = %d, want %d", i, out.Vecs[0].Int64s()[i], want)
		}
	}
}

func TestProject(t *testing.T) {
	schema, b := intBatch("x", 10, 20)
	double, _ := expr.NewBinOp(expr.OpMul, colRef(schema, "x"), expr.NewConst(types.Int64Datum(2)))
	p, err := NewProject(NewValues(schema, b), []expr.Expr{double}, []string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Vecs[0].Int64s()[0] != 20 || out.Vecs[0].Int64s()[1] != 40 {
		t.Errorf("project output wrong: %v", out.Vecs[0].Int64s())
	}
	if out.Schema.Col(0).Name != "d" {
		t.Errorf("projected column name = %q", out.Schema.Col(0).Name)
	}
}

func TestHashJoinInner(t *testing.T) {
	ls, lb := twoColBatch(6, func(i int) (int64, float64) { return int64(i % 3), float64(i) })
	rs, rb := twoColBatch(3, func(i int) (int64, float64) { return int64(i), float64(i) * 100 })

	for _, buildRight := range []bool{true, false} {
		j, err := NewHashJoin(
			NewValues(ls, lb), NewValues(rs, rb),
			[]expr.Expr{colRef(ls, "k")}, []expr.Expr{colRef(rs, "k")},
			buildRight,
		)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 6 {
			t.Fatalf("buildRight=%v: joined %d rows, want 6", buildRight, out.Len())
		}
		// Keys on both sides must match row-wise.
		for i := 0; i < out.Len(); i++ {
			if out.Vecs[0].Int64s()[i] != out.Vecs[2].Int64s()[i] {
				t.Fatalf("buildRight=%v: key mismatch at row %d", buildRight, i)
			}
			if out.Vecs[3].Float64s()[i] != float64(out.Vecs[0].Int64s()[i])*100 {
				t.Fatalf("buildRight=%v: payload mismatch at row %d", buildRight, i)
			}
		}
	}
}

func TestHashJoinPreservesProbeOrder(t *testing.T) {
	// With BuildRight, output must preserve the left (probe) input order —
	// the property ML-To-SQL's pipelined aggregation depends on (Sec. 4.4).
	n := 3000
	ls, lb := twoColBatch(n, func(i int) (int64, float64) { return int64(i % 5), float64(i) })
	rs, rb := twoColBatch(5, func(i int) (int64, float64) { return int64(i), 0 })
	j, err := NewHashJoin(NewValues(ls, lb), NewValues(rs, rb),
		[]expr.Expr{colRef(ls, "k")}, []expr.Expr{colRef(rs, "k")}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != n {
		t.Fatalf("joined %d rows, want %d", out.Len(), n)
	}
	for i := 1; i < out.Len(); i++ {
		if out.Vecs[1].Float64s()[i] <= out.Vecs[1].Float64s()[i-1] {
			t.Fatalf("probe order not preserved at row %d", i)
		}
	}
}

func TestCrossJoin(t *testing.T) {
	ls, lb := intBatch("a", 1, 2, 3)
	rs, rb := intBatch("b", 10, 20)
	j, err := NewCrossJoin(NewValues(ls, lb), NewValues(rs, rb))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Fatalf("cross join produced %d rows, want 6", out.Len())
	}
	counts := map[[2]int64]int{}
	for i := 0; i < 6; i++ {
		counts[[2]int64{out.Vecs[0].Int64s()[i], out.Vecs[1].Int64s()[i]}]++
	}
	if len(counts) != 6 {
		t.Errorf("cross join pairs not distinct: %v", counts)
	}
}

func TestHashJoinVsNestedLoopOracle(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := rng.Intn(300)+1, rng.Intn(50)+1
		ls, lb := twoColBatch(nl, func(i int) (int64, float64) { return int64(rng.Intn(10)), float64(i) })
		rs, rb := twoColBatch(nr, func(i int) (int64, float64) { return int64(rng.Intn(10)), float64(i) })
		j, err := NewHashJoin(NewValues(ls, lb), NewValues(rs, rb),
			[]expr.Expr{colRef(ls, "k")}, []expr.Expr{colRef(rs, "k")}, true)
		if err != nil {
			return false
		}
		out, err := Collect(j)
		if err != nil {
			return false
		}
		// Nested-loop oracle.
		want := 0
		for i := 0; i < nl; i++ {
			for k := 0; k < nr; k++ {
				if lb.Vecs[0].Int64s()[i] == rb.Vecs[0].Int64s()[k] {
					want++
				}
			}
		}
		return out.Len() == want
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func sumOracle(b *vector.Batch) map[int64]float64 {
	want := map[int64]float64{}
	for i := 0; i < b.Len(); i++ {
		want[b.Vecs[0].Int64s()[i]] += b.Vecs[1].Float64s()[i]
	}
	return want
}

func TestHashAggregateSum(t *testing.T) {
	schema, b := twoColBatch(1000, func(i int) (int64, float64) { return int64(i % 7), float64(i) })
	agg, err := NewHashAggregate(NewValues(schema, b),
		[]expr.Expr{colRef(schema, "k")}, []string{"k"},
		[]AggSpec{{Func: AggSum, Arg: colRef(schema, "v"), Name: "s"},
			{Func: AggCountStar, Name: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := sumOracle(b)
	if out.Len() != len(want) {
		t.Fatalf("got %d groups, want %d", out.Len(), len(want))
	}
	for i := 0; i < out.Len(); i++ {
		k := out.Vecs[0].Int64s()[i]
		if got := out.Vecs[1].Float64s()[i]; got != want[k] {
			t.Errorf("sum(k=%d) = %v, want %v", k, got, want[k])
		}
		if out.Vecs[2].Int64s()[i] == 0 {
			t.Errorf("count(k=%d) = 0", k)
		}
	}
}

func TestOrderedAggregateMatchesHash(t *testing.T) {
	// Sorted input: both aggregate variants must agree — the equivalence
	// behind the Sec. 4.4 optimization.
	schema, b := twoColBatch(5000, func(i int) (int64, float64) { return int64(i / 13), float64(i % 10) })
	mk := func() []AggSpec {
		return []AggSpec{
			{Func: AggSum, Arg: colRef(schema, "v"), Name: "s"},
			{Func: AggMin, Arg: colRef(schema, "v"), Name: "mn"},
			{Func: AggMax, Arg: colRef(schema, "v"), Name: "mx"},
			{Func: AggAvg, Arg: colRef(schema, "v"), Name: "avg"},
		}
	}
	h, err := NewHashAggregate(NewValues(schema, b), []expr.Expr{colRef(schema, "k")}, []string{"k"}, mk())
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOrderedAggregate(NewValues(schema, b), []expr.Expr{colRef(schema, "k")}, []string{"k"}, mk())
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Len() != ob.Len() {
		t.Fatalf("hash %d groups, ordered %d", hb.Len(), ob.Len())
	}
	hmap := map[int64][]float64{}
	for i := 0; i < hb.Len(); i++ {
		hmap[hb.Vecs[0].Int64s()[i]] = []float64{hb.Vecs[1].Float64s()[i], hb.Vecs[2].Float64s()[i], hb.Vecs[3].Float64s()[i], hb.Vecs[4].Float64s()[i]}
	}
	for i := 0; i < ob.Len(); i++ {
		k := ob.Vecs[0].Int64s()[i]
		want := hmap[k]
		got := []float64{ob.Vecs[1].Float64s()[i], ob.Vecs[2].Float64s()[i], ob.Vecs[3].Float64s()[i], ob.Vecs[4].Float64s()[i]}
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("group %d col %d: ordered %v, hash %v", k, c, got[c], want[c])
			}
		}
	}
}

func TestScalarAggregateEmptyInput(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "v", Type: types.Float64})
	agg, err := NewHashAggregate(NewValues(schema),
		nil, nil,
		[]AggSpec{{Func: AggCountStar, Name: "c"}, {Func: AggSum, Arg: expr.NewColRef(0, "v", types.Float64), Name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("scalar aggregate over empty input returned %d rows, want 1", out.Len())
	}
	if out.Vecs[0].Int64s()[0] != 0 {
		t.Errorf("COUNT(*) = %d, want 0", out.Vecs[0].Int64s()[0])
	}
	if !out.Vecs[1].NullAt(0) {
		t.Error("SUM over empty input should be NULL")
	}
}

func TestSortAscDesc(t *testing.T) {
	schema, b := intBatch("x", 5, 3, 9, 1, 7)
	s := NewSort(NewValues(schema, b), []SortKey{{E: colRef(schema, "x")}})
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	vals := out.Vecs[0].Int64s()
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
		t.Errorf("ascending sort wrong: %v", vals)
	}
	sd := NewSort(NewValues(schema, b), []SortKey{{E: colRef(schema, "x"), Desc: true}})
	outD, err := Collect(sd)
	if err != nil {
		t.Fatal(err)
	}
	valsD := outD.Vecs[0].Int64s()
	for i := 1; i < len(valsD); i++ {
		if valsD[i] > valsD[i-1] {
			t.Errorf("descending sort wrong: %v", valsD)
		}
	}
}

func TestLimit(t *testing.T) {
	schema, b := intBatch("x", 1, 2, 3, 4, 5)
	out, err := Collect(NewLimit(NewValues(schema, b), 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("limit 2 returned %d rows", out.Len())
	}
}

func TestUnionAll(t *testing.T) {
	schema, b1 := intBatch("x", 1, 2)
	_, b2 := intBatch("x", 3)
	out, err := Collect(NewUnionAll(NewValues(schema, b1), NewValues(schema, b2)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("union all returned %d rows, want 3", out.Len())
	}
}

func TestExchangeMergesAllPartitions(t *testing.T) {
	var children []Operator
	total := 0
	for p := 0; p < 8; p++ {
		schema, b := twoColBatch(100+p, func(i int) (int64, float64) { return int64(p), float64(i) })
		children = append(children, NewValues(schema, b))
		total += 100 + p
	}
	ex, err := NewExchange(children, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(ex)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != total {
		t.Errorf("exchange merged %d rows, want %d", out.Len(), total)
	}
	perPart := map[int64]int{}
	for i := 0; i < out.Len(); i++ {
		perPart[out.Vecs[0].Int64s()[i]]++
	}
	for p := 0; p < 8; p++ {
		if perPart[int64(p)] != 100+p {
			t.Errorf("partition %d contributed %d rows, want %d", p, perPart[int64(p)], 100+p)
		}
	}
}

func TestCollectRunsFullProtocol(t *testing.T) {
	schema, b := intBatch("x", 1)
	out, err := Collect(NewValues(schema, b))
	if err != nil || out.Len() != 1 {
		t.Fatalf("collect: %v, %d rows", err, out.Len())
	}
}
