package exec

import (
	"errors"
	"testing"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// TestHashJoinMatchExplosionAcrossBatches exercises the mid-row resume
// logic: a single probe row matching far more build rows than fit in one
// output batch must emit across several Next calls without loss or
// duplication.
func TestHashJoinMatchExplosionAcrossBatches(t *testing.T) {
	const buildRows = 3*vector.Size + 17
	ls, lb := twoColBatch(3, func(i int) (int64, float64) { return 1, float64(i) })
	rs, rb := twoColBatch(buildRows, func(i int) (int64, float64) { return 1, float64(i) })
	j, err := NewHashJoin(NewValues(ls, lb), NewValues(rs, rb),
		[]expr.Expr{colRef(ls, "k")}, []expr.Expr{colRef(rs, "k")}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3*buildRows {
		t.Fatalf("got %d rows, want %d", out.Len(), 3*buildRows)
	}
	// Every (probe v, build v) pair exactly once.
	seen := map[[2]float64]bool{}
	for r := 0; r < out.Len(); r++ {
		key := [2]float64{out.Vecs[1].Float64s()[r], out.Vecs[3].Float64s()[r]}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestHashJoinEmptyBuildSide(t *testing.T) {
	ls, lb := twoColBatch(10, func(i int) (int64, float64) { return int64(i), 0 })
	rs := types.NewSchema(
		types.Column{Name: "k", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	j, err := NewHashJoin(NewValues(ls, lb), NewValues(rs),
		[]expr.Expr{colRef(ls, "k")}, []expr.Expr{expr.NewColRef(0, "k", types.Int64)}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty build side produced %d rows", out.Len())
	}
}

func TestHashJoinMixedKeyTypesPromote(t *testing.T) {
	// Int32 join key against Int64 key must promote and still match.
	ls := types.NewSchema(types.Column{Name: "k", Type: types.Int32})
	lb := vector.NewBatch(ls, 2)
	_ = lb.AppendRow(types.Int32Datum(1))
	_ = lb.AppendRow(types.Int32Datum(2))
	rs := types.NewSchema(types.Column{Name: "k", Type: types.Int64})
	rb := vector.NewBatch(rs, 2)
	_ = rb.AppendRow(types.Int64Datum(2))
	_ = rb.AppendRow(types.Int64Datum(3))
	j, err := NewHashJoin(NewValues(ls, lb), NewValues(rs, rb),
		[]expr.Expr{expr.NewColRef(0, "k", types.Int32)},
		[]expr.Expr{expr.NewColRef(0, "k", types.Int64)}, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("mixed-type join matched %d rows, want 1", out.Len())
	}
}

// failingOp errors on Next, for error-propagation tests.
type failingOp struct {
	schema *types.Schema
}

func (f *failingOp) Schema() *types.Schema { return f.schema }
func (f *failingOp) Open() error           { return nil }
func (f *failingOp) Next() (*vector.Batch, error) {
	return nil, errors.New("synthetic failure")
}
func (f *failingOp) Close() error { return nil }

func TestExchangePropagatesChildErrors(t *testing.T) {
	schema, good := intBatch("x", 1, 2, 3)
	ex, err := NewExchange([]Operator{NewValues(schema, good), &failingOp{schema: schema}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(ex); err == nil {
		t.Error("exchange swallowed a child error")
	}
}

func TestExchangeCloseUnblocksProducers(t *testing.T) {
	// Close mid-stream must not deadlock producers blocked on the channel.
	var children []Operator
	for p := 0; p < 4; p++ {
		schema, b := twoColBatch(50*vector.Size, func(i int) (int64, float64) { return int64(i), 0 })
		children = append(children, NewValues(schema, b))
	}
	ex, err := NewExchange(children, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterErrorPropagation(t *testing.T) {
	schema, _ := intBatch("x", 1)
	pred, _ := expr.NewBinOp(expr.OpGt, colRef(schema, "x"), expr.NewConst(types.Int64Datum(0)))
	f, err := NewFilter(&failingOp{schema: schema}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(f); err == nil {
		t.Error("filter swallowed a child error")
	}
}

func TestSegmentedAggregatePeakGroupsBounded(t *testing.T) {
	// The memory point of Sec. 4.4: with an id-clustered stream, the
	// segmented aggregate holds only one segment's groups at a time.
	const ids, perID = 400, 8
	schema, b := twoColBatch(ids*perID, func(i int) (int64, float64) {
		return int64(i / perID), float64(i % perID)
	})
	// Group by (id, v): v has perID distinct values per id segment.
	agg, err := NewSegmentedAggregate(NewValues(schema, b),
		[]expr.Expr{colRef(schema, "k"), colRef(schema, "v")},
		[]string{"k", "v"},
		[]AggSpec{{Func: AggCountStar, Name: "c"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != ids*perID {
		t.Fatalf("got %d groups, want %d", out.Len(), ids*perID)
	}
	if agg.PeakGroups > perID {
		t.Errorf("segmented aggregate held %d groups at peak, want <= %d", agg.PeakGroups, perID)
	}

	hash, err := NewHashAggregate(NewValues(schema, b),
		[]expr.Expr{colRef(schema, "k"), colRef(schema, "v")},
		[]string{"k", "v"},
		[]AggSpec{{Func: AggCountStar, Name: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(hash); err != nil {
		t.Fatal(err)
	}
	if hash.PeakGroups != ids*perID {
		t.Errorf("hash aggregate peak groups = %d, want %d", hash.PeakGroups, ids*perID)
	}
}
