package exec

import (
	"fmt"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// Filter passes through rows for which the predicate evaluates to TRUE
// (NULL and FALSE both drop the row, per SQL semantics).
type Filter struct {
	Child Operator
	Pred  expr.Expr
	sel   []int
}

// NewFilter constructs a filter; the predicate must be boolean.
func NewFilter(child Operator, pred expr.Expr) (*Filter, error) {
	if pred.Type() != types.Bool {
		return nil, fmt.Errorf("exec: filter predicate must be boolean, got %s", pred.Type())
	}
	return &Filter{Child: child, Pred: pred}, nil
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.sel = make([]int, 0, vector.Size)
	return f.Child.Open()
}

// Next implements Operator.
func (f *Filter) Next() (*vector.Batch, error) {
	for {
		b, err := f.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		v, err := f.Pred.Eval(b)
		if err != nil {
			return nil, err
		}
		f.sel = f.sel[:0]
		bools := v.Bools()
		if v.HasNulls() {
			for i, ok := range bools {
				if ok && !v.NullAt(i) {
					f.sel = append(f.sel, i)
				}
			}
		} else {
			for i, ok := range bools {
				if ok {
					f.sel = append(f.sel, i)
				}
			}
		}
		if len(f.sel) == 0 {
			continue
		}
		if len(f.sel) < b.Len() {
			b.Gather(f.sel)
		}
		return b, nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project evaluates one expression per output column.
type Project struct {
	Child  Operator
	Exprs  []expr.Expr
	schema *types.Schema
	out    *vector.Batch
}

// NewProject constructs a projection with the given output column names.
func NewProject(child Operator, exprs []expr.Expr, names []string) (*Project, error) {
	if len(exprs) != len(names) {
		return nil, fmt.Errorf("exec: project has %d expressions but %d names", len(exprs), len(names))
	}
	cols := make([]types.Column, len(exprs))
	for i, e := range exprs {
		cols[i] = types.Column{Name: names[i], Type: e.Type()}
	}
	return &Project{Child: child, Exprs: exprs, schema: types.NewSchema(cols...)}, nil
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error {
	p.out = vector.NewBatch(p.schema, vector.Size)
	return p.Child.Open()
}

// Next implements Operator.
func (p *Project) Next() (*vector.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := vector.NewBatch(p.schema, b.Len())
	for i, e := range p.Exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		out.Vecs[i].CopyFrom(v, nil)
	}
	out.SetLen(b.Len())
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }
