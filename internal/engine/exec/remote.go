package exec

import (
	"context"
	"fmt"
	"sync"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
	"indbml/internal/trace"
)

// RemoteSource is one remote engine's contribution to a RemoteExchange: a
// stream of batches produced by a query fragment running on another process.
// The exec package stays transport-agnostic — the dist package implements
// this over wire-protocol client connections.
//
// Sources own their batches: RemoteExchange forwards them without copying,
// so Next must not reuse a returned batch's buffers. Close must be safe to
// call concurrently with a blocked Next and must unblock it (closing the
// underlying connection does both).
type RemoteSource interface {
	// Label names the source ("shard 2 (host:port)") for error attribution.
	Label() string
	Open() error
	Next() (*vector.Batch, error)
	Close() error
}

// RemoteExchange is the coordinator side of scatter-gather execution: it
// fans out to one RemoteSource per shard fragment and merges their batch
// streams concurrently, exactly as Exchange merges per-partition plans
// within one process. Any source error fails the whole exchange; Close (or
// Ctx cancellation) tears down every source, which is what propagates a
// coordinator KILL into the shard fragments' connections.
type RemoteExchange struct {
	sources []RemoteSource
	schema  *types.Schema
	// Ctx, when set, fails Next fast on cancellation and stops producers.
	Ctx context.Context
	// OnStop, when set, runs exactly once as teardown begins — before
	// sources are closed — whether via Close or context cancellation. The
	// dist layer uses it to send best-effort KILL ORIGIN to the shards so
	// fragments die immediately instead of at connection teardown.
	OnStop func()

	ch       chan *vector.Batch
	errCh    chan error
	wg       sync.WaitGroup
	stopped  chan struct{}
	stopOnce sync.Once
	opened   bool
}

// NewRemoteExchange builds an exchange over shard sources producing rows of
// the given schema.
func NewRemoteExchange(schema *types.Schema, sources []RemoteSource) (*RemoteExchange, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("exec: remote exchange requires at least one source")
	}
	return &RemoteExchange{sources: sources, schema: schema}, nil
}

// Schema implements Operator.
func (e *RemoteExchange) Schema() *types.Schema { return e.schema }

// Describe names the operator for EXPLAIN/trace output.
func (e *RemoteExchange) Describe() string {
	return fmt.Sprintf("RemoteExchange(%d shards)", len(e.sources))
}

// SetSpan implements trace.SpanCarrier: one child span per shard source is
// hung off the exchange's span, and each source that can record (the dist
// layer's shard sources) gets its child handed down. The source records
// fan-out latency, wire bytes, first/last-row skew there, and grafts the
// shard's own operator subtree under it when the fragment's trace trailer
// arrives — which is how distributed EXPLAIN ANALYZE renders one stitched
// tree.
func (e *RemoteExchange) SetSpan(s *trace.Span) {
	for _, src := range e.sources {
		child := s.NewChild(src.Label())
		if sc, ok := src.(trace.SpanCarrier); ok {
			sc.SetSpan(child)
		}
	}
}

func (e *RemoteExchange) done() <-chan struct{} {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Done()
}

// stop begins teardown once: fire OnStop, then unblock and close every
// source. Producer goroutines blocked inside src.Next return with errors
// which are discarded once stopped is closed.
func (e *RemoteExchange) stop() {
	e.stopOnce.Do(func() {
		close(e.stopped)
		if e.OnStop != nil {
			e.OnStop()
		}
		for _, src := range e.sources {
			src.Close()
		}
	})
}

// Open implements Operator: it launches one goroutine per shard source.
func (e *RemoteExchange) Open() error {
	e.ch = make(chan *vector.Batch, len(e.sources))
	e.errCh = make(chan error, len(e.sources))
	e.stopped = make(chan struct{})
	e.opened = true

	for _, src := range e.sources {
		e.wg.Add(1)
		go func(src RemoteSource) {
			defer e.wg.Done()
			fail := func(err error) {
				select {
				case <-e.stopped:
					// Teardown already under way; the error is a symptom
					// (closed connection), not a cause worth reporting.
				default:
					e.errCh <- fmt.Errorf("%s: %w", src.Label(), err)
				}
			}
			if err := src.Open(); err != nil {
				fail(err)
				return
			}
			for {
				b, err := src.Next()
				if err != nil {
					fail(err)
					return
				}
				if b == nil {
					return
				}
				select {
				case e.ch <- b:
				case <-e.stopped:
					return
				case <-e.done():
					fail(e.Ctx.Err())
					return
				}
			}
		}(src)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
	return nil
}

// Next implements Operator.
func (e *RemoteExchange) Next() (*vector.Batch, error) {
	select {
	case err := <-e.errCh:
		e.stop()
		return nil, err
	case b, ok := <-e.ch:
		if !ok {
			select {
			case err := <-e.errCh:
				e.stop()
				return nil, err
			default:
				return nil, nil
			}
		}
		return b, nil
	case <-e.done():
		e.stop()
		return nil, e.Ctx.Err()
	}
}

// Close implements Operator: it tears down sources (killing remote
// fragments via closed connections) and drains producers.
func (e *RemoteExchange) Close() error {
	if !e.opened {
		return nil
	}
	e.stop()
	for range e.ch {
		// Unblock producers and drain.
	}
	e.wg.Wait()
	e.opened = false
	return nil
}
