package exec

import (
	"sync/atomic"
	"time"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
	"indbml/internal/trace"
)

// Traced decorates an operator with span accounting: busy time across
// Open/Next/Close, and rows/batches produced. It is only inserted into
// plans built with tracing enabled (plan.BuildTraced), so the normal
// execution path carries zero overhead.
//
// Several Traced instances may share one span: in a parallel plan each
// partition instance of a logical node records into the same span, which
// is why every span mutation is a single atomic add.
type Traced struct {
	Child Operator
	Span  *trace.Span

	// Live scanned-bytes publishing: the child's ScannedBytes() is a
	// cumulative per-instance total, while the span counter is shared
	// across partition instances, so each instance feeds only its delta
	// since the previous sample. Resolved once at Open.
	bytesSrc  interface{ ScannedBytes() int64 }
	bytesCtr  *atomic.Int64
	published int64
}

// NewTraced wraps child so its activity is recorded into span.
func NewTraced(child Operator, span *trace.Span) *Traced {
	return &Traced{Child: child, Span: span}
}

// Schema implements Operator.
func (t *Traced) Schema() *types.Schema { return t.Child.Schema() }

// Open implements Operator.
func (t *Traced) Open() error {
	start := time.Now()
	err := t.Child.Open()
	t.Span.AddWall(time.Since(start))
	if sb, ok := t.Child.(interface{ ScannedBytes() int64 }); ok {
		t.bytesSrc = sb
		t.bytesCtr = t.Span.Counter("scanned_bytes")
	}
	return err
}

// publishBytes feeds this instance's scanned-bytes growth into the shared
// span counter, keeping system.active_queries current while the scan runs.
func (t *Traced) publishBytes() {
	if t.bytesSrc == nil {
		return
	}
	if cur := t.bytesSrc.ScannedBytes(); cur != t.published {
		t.bytesCtr.Add(cur - t.published)
		t.published = cur
	}
}

// Next implements Operator.
func (t *Traced) Next() (*vector.Batch, error) {
	start := time.Now()
	b, err := t.Child.Next()
	t.Span.AddWall(time.Since(start))
	if b != nil {
		t.Span.AddRows(int64(b.Len()))
		t.Span.AddBatches(1)
	}
	t.publishBytes()
	return b, err
}

// Close implements Operator.
func (t *Traced) Close() error {
	start := time.Now()
	err := t.Child.Close()
	t.Span.AddWall(time.Since(start))
	if bp, ok := t.Child.(interface{ PrunedBlocks() int }); ok {
		t.Span.Counter("pruned_blocks").Add(int64(bp.PrunedBlocks()))
	}
	t.publishBytes()
	return err
}
