package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

func TestTopNMatchesSortLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	schema, b := twoColBatch(5000, func(i int) (int64, float64) { return int64(rng.Intn(1000)), float64(i) })

	keys := []SortKey{{E: colRef(schema, "k")}, {E: colRef(schema, "v"), Desc: true}}
	topn := NewTopN(NewValues(schema, b), keys, 25)
	want := NewLimit(NewSort(NewValues(schema, b), keys), 25)

	got, err := Collect(topn)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Collect(want)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ref.Len() {
		t.Fatalf("topn %d rows, sort+limit %d", got.Len(), ref.Len())
	}
	for r := 0; r < got.Len(); r++ {
		if got.Vecs[0].Int64s()[r] != ref.Vecs[0].Int64s()[r] || got.Vecs[1].Float64s()[r] != ref.Vecs[1].Float64s()[r] {
			t.Fatalf("row %d differs: (%d,%v) vs (%d,%v)", r,
				got.Vecs[0].Int64s()[r], got.Vecs[1].Float64s()[r],
				ref.Vecs[0].Int64s()[r], ref.Vecs[1].Float64s()[r])
		}
	}
}

func TestTopNFewerRowsThanN(t *testing.T) {
	schema, b := intBatch("x", 3, 1, 2)
	out, err := Collect(NewTopN(NewValues(schema, b), []SortKey{{E: colRef(schema, "x")}}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("got %d rows", out.Len())
	}
	vals := out.Vecs[0].Int64s()
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Errorf("order wrong: %v", vals)
	}
}

func TestTopNZero(t *testing.T) {
	schema, b := intBatch("x", 1, 2)
	out, err := Collect(NewTopN(NewValues(schema, b), []SortKey{{E: colRef(schema, "x")}}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("n=0 returned %d rows", out.Len())
	}
}

func TestTopNPropertyAgainstOracle(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		rows := rng.Intn(500) + 1
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(rng.Intn(100))
		}
		schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
		batch := newIntBatchFrom(schema, vals)
		out, err := Collect(NewTopN(NewValues(schema, batch), []SortKey{{E: colRef(schema, "x"), Desc: true}}, n))
		if err != nil {
			return false
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		if n > rows {
			n = rows
		}
		if out.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if out.Vecs[0].Int64s()[i] != sorted[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// newIntBatchFrom builds a single-column int64 batch from values.
func newIntBatchFrom(schema *types.Schema, vals []int64) *vector.Batch {
	b := vector.NewBatch(schema, len(vals))
	for _, v := range vals {
		_ = b.AppendRow(types.Int64Datum(v))
	}
	return b
}
