package exec

import (
	"indbml/internal/engine/storage"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// VirtualScan streams a point-in-time snapshot of a virtual system table
// (system.queries, system.metrics, ...). The snapshot is taken once at
// Open; the batches it returns are streamed as-is, so the scan never
// blocks the live structure it reads from and never sees a torn view.
type VirtualScan struct {
	VT storage.VirtualTable

	batches []*vector.Batch
	pos     int
}

// NewVirtualScan constructs a scan over the given virtual table.
func NewVirtualScan(vt storage.VirtualTable) *VirtualScan {
	return &VirtualScan{VT: vt}
}

// Schema implements Operator.
func (v *VirtualScan) Schema() *types.Schema { return v.VT.Schema() }

// Open implements Operator.
func (v *VirtualScan) Open() error {
	batches, err := v.VT.Snapshot()
	if err != nil {
		return err
	}
	v.batches = batches
	v.pos = 0
	return nil
}

// Next implements Operator.
func (v *VirtualScan) Next() (*vector.Batch, error) {
	if v.pos >= len(v.batches) {
		return nil, nil
	}
	b := v.batches[v.pos]
	v.pos++
	return b, nil
}

// Close implements Operator.
func (v *VirtualScan) Close() error {
	v.batches = nil
	return nil
}
