// Package exec implements the engine's physical operators. Execution
// follows the Volcano iterator model (Graefe 1994) — open/next/close — but
// vectorized in the X100 style: Next produces a batch of up to vector.Size
// tuples rather than a single row. The ModelJoin operator of the paper
// (package core/modeljoin) plugs into this interface as a regular operator,
// so inference can be nested into arbitrary queries (Sec. 5.1).
package exec

import (
	"context"
	"errors"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// IsCancellation reports whether an execution error originates from context
// cancellation or deadline expiry rather than a genuine query failure.
// Operators propagate ctx errors verbatim, so errors.Is suffices.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Operator is a physical query operator. The contract:
//
//   - Open acquires resources and must be called exactly once before Next;
//   - Next returns the next batch, or nil at end-of-stream;
//   - Close releases resources; it is idempotent.
//
// Batches returned by Next are owned by the caller until the next call.
type Operator interface {
	// Schema describes the operator's output columns.
	Schema() *types.Schema
	// Open prepares the operator (and its children) for execution.
	Open() error
	// Next returns the next output batch, or nil when exhausted.
	Next() (*vector.Batch, error)
	// Close releases resources.
	Close() error
}

// Values is a leaf operator producing a fixed, materialized batch sequence.
// It backs constant relations and tests.
type Values struct {
	schema  *types.Schema
	batches []*vector.Batch
	pos     int
}

// NewValues creates a Values operator over pre-built batches.
func NewValues(schema *types.Schema, batches ...*vector.Batch) *Values {
	return &Values{schema: schema, batches: batches}
}

// Schema implements Operator.
func (v *Values) Schema() *types.Schema { return v.schema }

// Open implements Operator.
func (v *Values) Open() error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (*vector.Batch, error) {
	for v.pos < len(v.batches) {
		b := v.batches[v.pos]
		v.pos++
		if b.Len() > 0 {
			return b, nil
		}
	}
	return nil, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// Collect drains an operator into a single materialized batch, running the
// full open/next/close protocol. It is the execution entry point for
// clients that want the whole result.
func Collect(op Operator) (*vector.Batch, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	out := vector.NewBatch(op.Schema(), vector.Size)
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out.AppendBatch(b)
	}
}

// Drain consumes an operator, invoking fn per batch, without materializing.
func Drain(op Operator, fn func(*vector.Batch) error) error {
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if fn != nil {
			if err := fn(b); err != nil {
				return err
			}
		}
	}
}

// Limit passes through at most n rows.
type Limit struct {
	Child Operator
	N     int
	seen  int
}

// NewLimit constructs a LIMIT operator.
func NewLimit(child Operator, n int) *Limit { return &Limit{Child: child, N: n} }

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Next implements Operator.
func (l *Limit) Next() (*vector.Batch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	b, err := l.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+b.Len() > l.N {
		keep := l.N - l.seen
		sel := make([]int, keep)
		for i := range sel {
			sel[i] = i
		}
		b.Gather(sel)
	}
	l.seen += b.Len()
	return b, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// UnionAll concatenates the outputs of several children with identical
// schemas.
type UnionAll struct {
	Children []Operator
	cur      int
}

// NewUnionAll constructs a UNION ALL operator.
func NewUnionAll(children ...Operator) *UnionAll { return &UnionAll{Children: children} }

// Schema implements Operator.
func (u *UnionAll) Schema() *types.Schema { return u.Children[0].Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.cur = 0
	for _, c := range u.Children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next() (*vector.Batch, error) {
	for u.cur < len(u.Children) {
		b, err := u.Children[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.cur++
	}
	return nil, nil
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	var firstErr error
	for _, c := range u.Children {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PrunedBlocks sums zone-map pruning across children that report it, so a
// traced scan over all partitions (a UnionAll of per-partition Scans)
// still surfaces its pruned-block count.
func (u *UnionAll) PrunedBlocks() int {
	total := 0
	for _, c := range u.Children {
		if bp, ok := c.(interface{ PrunedBlocks() int }); ok {
			total += bp.PrunedBlocks()
		}
	}
	return total
}

// ScannedBytes sums decoded-block bytes across children that report it,
// mirroring PrunedBlocks for the flight recorder's bytes_scanned column.
func (u *UnionAll) ScannedBytes() int64 {
	var total int64
	for _, c := range u.Children {
		if sb, ok := c.(interface{ ScannedBytes() int64 }); ok {
			total += sb.ScannedBytes()
		}
	}
	return total
}
