package exec

import (
	"sort"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by the sort keys. It is
// a pipeline breaker; ML-To-SQL avoids planting sorts by exploiting
// order-preserving joins over pre-sorted tables instead (Sec. 4.4).
type Sort struct {
	Child Operator
	Keys  []SortKey

	data *vector.Batch
	perm []int
	pos  int
}

// NewSort constructs a sort operator.
func NewSort(child Operator, keys []SortKey) *Sort { return &Sort{Child: child, Keys: keys} }

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Open implements Operator: it drains and sorts the whole input.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.data = vector.NewBatch(s.Child.Schema(), vector.Size)
	keyVals := make([]*vector.Vector, len(s.Keys))
	for i, k := range s.Keys {
		keyVals[i] = vector.New(k.E.Type(), 0)
	}
	for {
		b, err := s.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i, k := range s.Keys {
			v, err := k.E.Eval(b)
			if err != nil {
				return err
			}
			keyVals[i].AppendFrom(v, nil)
		}
		s.data.AppendBatch(b)
	}
	s.perm = make([]int, s.data.Len())
	for i := range s.perm {
		s.perm[i] = i
	}
	sort.SliceStable(s.perm, func(a, b int) bool {
		ia, ib := s.perm[a], s.perm[b]
		for ki, k := range s.Keys {
			c := keyVals[ki].Datum(ia).Compare(keyVals[ki].Datum(ib))
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (*vector.Batch, error) {
	if s.pos >= len(s.perm) {
		return nil, nil
	}
	n := len(s.perm) - s.pos
	if n > vector.Size {
		n = vector.Size
	}
	out := vector.NewBatch(s.Schema(), n)
	sel := s.perm[s.pos : s.pos+n]
	for c, v := range out.Vecs {
		v.CopyFrom(s.data.Vecs[c], sel)
	}
	out.SetLen(n)
	s.pos += n
	return out, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.data, s.perm = nil, nil
	return s.Child.Close()
}
