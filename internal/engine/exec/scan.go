package exec

import (
	"context"

	"indbml/internal/engine/storage"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// Scan reads one partition of a column-store table, applying projection and
// zone-map block pruning in the storage layer (Sec. 4.4's layer filter on
// the model table is realized as a RangeFilter here).
type Scan struct {
	Table     *storage.Table
	Partition int
	Proj      []int
	Filters   []storage.RangeFilter

	// Ctx, when set, is checked on every Next call: scans are the leaves of
	// every plan, so a canceled query stops pulling blocks within one batch
	// regardless of what pipeline sits above.
	Ctx context.Context

	scanner *storage.Scanner
	buf     *vector.Batch
}

// NewScan constructs a scan over partition pi with optional projection
// (nil = all columns) and zone-map filters.
func NewScan(t *storage.Table, pi int, proj []int, filters []storage.RangeFilter) (*Scan, error) {
	// Create a scanner eagerly to validate arguments and expose the schema
	// before Open.
	s, err := t.NewScanner(pi, proj, filters)
	if err != nil {
		return nil, err
	}
	return &Scan{Table: t, Partition: pi, Proj: proj, Filters: filters, scanner: s}, nil
}

// Schema implements Operator.
func (s *Scan) Schema() *types.Schema { return s.scanner.Schema() }

// Open implements Operator.
func (s *Scan) Open() error {
	sc, err := s.Table.NewScanner(s.Partition, s.Proj, s.Filters)
	if err != nil {
		return err
	}
	s.scanner = sc
	s.buf = vector.NewBatch(sc.Schema(), vector.Size)
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (*vector.Batch, error) {
	if s.Ctx != nil {
		if err := s.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if !s.scanner.Next(s.buf) {
		return nil, nil
	}
	return s.buf, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// PrunedBlocks reports how many blocks the storage layer skipped via zone
// maps during the last execution.
func (s *Scan) PrunedBlocks() int { return s.scanner.PrunedBlocks }

// ScannedBytes reports the compressed bytes of every block the storage
// layer actually decoded during the last execution.
func (s *Scan) ScannedBytes() int64 { return s.scanner.ScannedBytes }
