package exec

import (
	"context"
	"fmt"
	"sync"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// Exchange realizes the engine's partition parallelism (Sec. 4.4/5.2): each
// child is an independent physical plan instance over one partition —
// mirroring x100's private per-thread query plans — and Exchange runs them
// concurrently, merging their outputs. Batches are deep-copied into the
// channel because children reuse their output buffers.
type Exchange struct {
	Children []Operator
	// MaxParallel caps concurrent children; 0 means all at once (the
	// paper's setup runs 12 partitions at parallelism level 12).
	MaxParallel int
	// Ctx, when set, cancels the exchange: producer goroutines stop pulling
	// from their children and Next fails fast, so a canceled query releases
	// its workers without draining the remaining partitions.
	Ctx context.Context

	ch      chan *vector.Batch
	errCh   chan error
	wg      sync.WaitGroup
	stopped chan struct{}
	opened  bool
}

// NewExchange constructs an exchange over per-partition plans. All children
// must share a schema.
func NewExchange(children []Operator, maxParallel int) (*Exchange, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("exec: exchange requires at least one child")
	}
	for _, c := range children[1:] {
		if !c.Schema().Equal(children[0].Schema()) {
			return nil, fmt.Errorf("exec: exchange children have mismatched schemas: %s vs %s", c.Schema(), children[0].Schema())
		}
	}
	return &Exchange{Children: children, MaxParallel: maxParallel}, nil
}

// Schema implements Operator.
func (e *Exchange) Schema() *types.Schema { return e.Children[0].Schema() }

// done returns the cancellation channel (nil — blocking forever in a
// select — when no context is attached).
func (e *Exchange) done() <-chan struct{} {
	if e.Ctx == nil {
		return nil
	}
	return e.Ctx.Done()
}

// Open implements Operator: it launches one goroutine per child.
func (e *Exchange) Open() error {
	e.ch = make(chan *vector.Batch, len(e.Children))
	e.errCh = make(chan error, len(e.Children))
	e.stopped = make(chan struct{})
	e.opened = true

	limit := e.MaxParallel
	if limit <= 0 || limit > len(e.Children) {
		limit = len(e.Children)
	}
	sem := make(chan struct{}, limit)

	for _, child := range e.Children {
		e.wg.Add(1)
		go func(op Operator) {
			defer e.wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := op.Open(); err != nil {
				e.errCh <- err
				return
			}
			defer op.Close()
			for {
				if e.Ctx != nil {
					if err := e.Ctx.Err(); err != nil {
						e.errCh <- err
						return
					}
				}
				b, err := op.Next()
				if err != nil {
					e.errCh <- err
					return
				}
				if b == nil {
					return
				}
				cp := vector.NewBatch(op.Schema(), b.Len())
				cp.AppendBatch(b)
				select {
				case e.ch <- cp:
				case <-e.stopped:
					return
				case <-e.done():
					e.errCh <- e.Ctx.Err()
					return
				}
			}
		}(child)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
	return nil
}

// Next implements Operator.
func (e *Exchange) Next() (*vector.Batch, error) {
	for {
		select {
		case err := <-e.errCh:
			return nil, err
		case b, ok := <-e.ch:
			if !ok {
				// Drain a late error if one raced with channel close.
				select {
				case err := <-e.errCh:
					return nil, err
				default:
					return nil, nil
				}
			}
			return b, nil
		case <-e.done():
			return nil, e.Ctx.Err()
		}
	}
}

// Close implements Operator.
func (e *Exchange) Close() error {
	if !e.opened {
		return nil
	}
	close(e.stopped)
	for range e.ch {
		// Unblock producers and drain.
	}
	e.opened = false
	return nil
}
