package exec

import (
	"fmt"

	"indbml/internal/engine/expr"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// HashJoin is an inner equi-join following the classic two-phase build/probe
// pattern the paper models the ModelJoin on (Fig. 5). The build side is
// materialized into a hash table; the probe side streams. With zero key
// pairs it degenerates to a cross join (the input function of ML-To-SQL
// cross-joins the fact table with the model's input layer, Listing 2/3).
//
// Output columns are always Left's followed by Right's. When BuildRight is
// set (the default chosen by the planner when the right side is small — the
// model side), the left input streams, so the join preserves the left
// input's row order; this is what makes the pipelined, order-based
// aggregation of Sec. 4.4 possible downstream.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []expr.Expr
	// BuildRight selects which side is materialized: true builds the hash
	// table from Right and probes with Left.
	BuildRight bool

	schema *types.Schema
	keyer  *keyer

	// build state
	buildData *vector.Batch
	intTable  map[intKey][]int32
	byteTable map[string][]int32

	// probe state
	probeBatch *vector.Batch
	probeKeys  []*vector.Vector
	probeRow   int
	matchPos   int
	keyBuf     []byte
}

// NewHashJoin constructs an inner hash join.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, buildRight bool) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("exec: join has %d left keys but %d right keys", len(leftKeys), len(rightKeys))
	}
	for i := range leftKeys {
		lt, rt := leftKeys[i].Type(), rightKeys[i].Type()
		if lt != rt {
			common, err := types.Promote(lt, rt)
			if err != nil {
				return nil, fmt.Errorf("exec: join key %d: %w", i, err)
			}
			leftKeys[i] = expr.NewCast(leftKeys[i], common)
			rightKeys[i] = expr.NewCast(rightKeys[i], common)
		}
	}
	return &HashJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		BuildRight: buildRight,
		schema:     left.Schema().Concat(right.Schema()),
	}, nil
}

// NewCrossJoin constructs a cross join (a key-less hash join) that
// materializes the right side.
func NewCrossJoin(left, right Operator) (*HashJoin, error) {
	return NewHashJoin(left, right, nil, nil, true)
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema { return j.schema }

func (j *HashJoin) buildSide() (Operator, []expr.Expr) {
	if j.BuildRight {
		return j.Right, j.RightKeys
	}
	return j.Left, j.LeftKeys
}

func (j *HashJoin) probeSide() (Operator, []expr.Expr) {
	if j.BuildRight {
		return j.Left, j.LeftKeys
	}
	return j.Right, j.RightKeys
}

// Open implements Operator: it drains the build side into the hash table.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	build, buildKeys := j.buildSide()
	j.keyer = newKeyer(buildKeys)
	j.buildData = vector.NewBatch(build.Schema(), vector.Size)
	if j.keyer.intFast {
		j.intTable = make(map[intKey][]int32)
	} else {
		j.byteTable = make(map[string][]int32)
	}
	for {
		b, err := build.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		base := int32(j.buildData.Len())
		if len(buildKeys) > 0 {
			keys, err := j.keyer.evalKeys(b)
			if err != nil {
				return err
			}
			if j.keyer.intFast {
				for r := 0; r < b.Len(); r++ {
					k := intKeyAt(keys, r)
					j.intTable[k] = append(j.intTable[k], base+int32(r))
				}
			} else {
				for r := 0; r < b.Len(); r++ {
					j.keyBuf = byteKeyAt(keys, r, j.keyBuf[:0])
					j.byteTable[string(j.keyBuf)] = append(j.byteTable[string(j.keyBuf)], base+int32(r))
				}
			}
		}
		j.buildData.AppendBatch(b)
	}
	if len(buildKeys) == 0 {
		// Cross join: every build row matches every probe row.
		all := make([]int32, j.buildData.Len())
		for i := range all {
			all[i] = int32(i)
		}
		j.intTable[intKey{}] = all
	}
	j.probeBatch = nil
	j.probeRow, j.matchPos = 0, 0
	return nil
}

// matchesFor returns the build-row list matching probe row r.
func (j *HashJoin) matchesFor(r int) []int32 {
	if len(j.LeftKeys) == 0 {
		return j.intTable[intKey{}]
	}
	if j.keyer.intFast {
		return j.intTable[intKeyAt(j.probeKeys, r)]
	}
	j.keyBuf = byteKeyAt(j.probeKeys, r, j.keyBuf[:0])
	return j.byteTable[string(j.keyBuf)]
}

// Next implements Operator: it emits combined rows in probe order, resuming
// mid-row across calls when a probe row matches more build rows than fit in
// one output batch. Selections never span probe batches, because probe
// children are free to reuse their output buffers between Next calls.
func (j *HashJoin) Next() (*vector.Batch, error) {
	probe, probeKeys := j.probeSide()
	out := vector.NewBatch(j.schema, vector.Size)
	probeSel := make([]int, 0, vector.Size)
	buildSel := make([]int, 0, vector.Size)

	for {
		if j.probeBatch == nil {
			b, err := probe.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return nil, nil
			}
			if b.Len() == 0 {
				continue
			}
			j.probeBatch = b
			if len(probeKeys) > 0 {
				j.probeKeys, err = j.keyer.evalKeysProbe(probeKeys, b)
				if err != nil {
					return nil, err
				}
			}
			j.probeRow, j.matchPos = 0, 0
		}
		for j.probeRow < j.probeBatch.Len() {
			matches := j.matchesFor(j.probeRow)
			for j.matchPos < len(matches) && len(probeSel) < vector.Size {
				probeSel = append(probeSel, j.probeRow)
				buildSel = append(buildSel, int(matches[j.matchPos]))
				j.matchPos++
			}
			if j.matchPos < len(matches) {
				// Output batch full mid-row; emit and resume here.
				j.emit(out, j.probeBatch, probeSel, buildSel)
				return out, nil
			}
			j.probeRow++
			j.matchPos = 0
			if len(probeSel) >= vector.Size {
				break
			}
		}
		if j.probeRow >= j.probeBatch.Len() {
			// Probe batch exhausted: emit whatever matched before letting
			// the child recycle its buffer.
			finished := j.probeBatch
			j.probeBatch = nil
			if len(probeSel) > 0 {
				j.emit(out, finished, probeSel, buildSel)
				return out, nil
			}
			continue
		}
		// Output full at a row boundary within the current probe batch.
		j.emit(out, j.probeBatch, probeSel, buildSel)
		return out, nil
	}
}

// emit gathers the selected probe/build rows into the output batch in
// Left-columns-then-Right-columns order.
func (j *HashJoin) emit(out *vector.Batch, probeBatch *vector.Batch, probeSel, buildSel []int) {
	nLeft := j.Left.Schema().Len()
	leftBatch, leftSel := probeBatch, probeSel
	rightBatch, rightSel := j.buildData, buildSel
	if !j.BuildRight {
		leftBatch, leftSel = j.buildData, buildSel
		rightBatch, rightSel = probeBatch, probeSel
	}
	for c := 0; c < nLeft; c++ {
		out.Vecs[c].CopyFrom(leftBatch.Vecs[c], leftSel)
	}
	for c := 0; c < rightBatch.Schema.Len(); c++ {
		out.Vecs[nLeft+c].CopyFrom(rightBatch.Vecs[c], rightSel)
	}
	out.SetLen(len(probeSel))
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	j.buildData, j.intTable, j.byteTable = nil, nil, nil
	if err1 != nil {
		return err1
	}
	return err2
}

// evalKeysProbe evaluates probe-side key expressions; separate from the
// build-side keyer because probe keys are different expressions over a
// different schema.
func (k *keyer) evalKeysProbe(exprs []expr.Expr, b *vector.Batch) ([]*vector.Vector, error) {
	vecs := make([]*vector.Vector, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	return vecs, nil
}
