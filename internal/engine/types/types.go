// Package types defines the value types and schemas used throughout the
// vectorized query engine. The engine is a column store in the spirit of
// MonetDB/X100 (Boncz et al., CIDR 2005): every intermediate result is a set
// of typed column vectors, and a Schema describes the columns of a relation.
package types

import (
	"fmt"
	"strings"
)

// T identifies a physical column type. The engine is deliberately small: the
// six types below cover everything the paper's workloads need (fact tables,
// the 16-column relational model representation, and inference results).
type T uint8

// Supported column types.
const (
	Unknown T = iota
	Bool
	Int32
	Int64
	Float32
	Float64
	String
)

// String returns the SQL-facing name of the type.
func (t T) String() string {
	switch t {
	case Bool:
		return "BOOLEAN"
	case Int32:
		return "INTEGER"
	case Int64:
		return "BIGINT"
	case Float32:
		return "REAL"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether t is a numeric type.
func (t T) IsNumeric() bool {
	switch t {
	case Int32, Int64, Float32, Float64:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating point type.
func (t T) IsFloat() bool { return t == Float32 || t == Float64 }

// IsInteger reports whether t is an integer type.
func (t T) IsInteger() bool { return t == Int32 || t == Int64 }

// Width returns the in-memory width of a single value in bytes. Strings
// report the size of a string header; their payload is accounted separately.
func (t T) Width() int {
	switch t {
	case Bool:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	case String:
		return 16
	default:
		return 0
	}
}

// ParseType maps a SQL type name to a T. It accepts the usual aliases so the
// parser can stay simple.
func ParseType(name string) (T, error) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "INT", "INT4", "INTEGER":
		return Int32, nil
	case "BIGINT", "INT8", "LONG":
		return Int64, nil
	case "REAL", "FLOAT4", "FLOAT":
		return Float32, nil
	case "DOUBLE", "FLOAT8", "DOUBLE PRECISION":
		return Float64, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return String, nil
	default:
		return Unknown, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Promote returns the common type two numeric operands are widened to before
// a binary arithmetic or comparison operation, following the usual numeric
// tower: any float operand promotes the result to the wider float; otherwise
// the wider integer wins.
func Promote(a, b T) (T, error) {
	if a == b {
		return a, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Unknown, fmt.Errorf("types: cannot promote %s and %s", a, b)
	}
	rank := func(t T) int {
		switch t {
		case Int32:
			return 1
		case Int64:
			return 2
		case Float32:
			return 3
		case Float64:
			return 4
		}
		return 0
	}
	// Mixing an integer wider than 32 bits with float32 must not lose more
	// precision than necessary; promote to float64 in that case, matching
	// common SQL engines.
	if a == Int64 && b == Float32 || a == Float32 && b == Int64 {
		return Float64, nil
	}
	if rank(a) > rank(b) {
		return a, nil
	}
	return b, nil
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type T
	// NotNull records a NOT NULL constraint; vectors for such columns can
	// skip null-bitmap handling.
	NotNull bool
}

// Schema describes the columns of a relation. A Schema is immutable once
// built; operators derive new schemas rather than mutating existing ones.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from a list of columns. Duplicate column names
// are allowed (they occur naturally after joins); Lookup resolves to the
// first occurrence, and callers that need a specific duplicate use ordinals.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, ok := s.index[key]; !ok {
			s.index[key] = i
		}
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Lookup returns the ordinal of the named column (case-insensitive) and
// whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// Concat returns a schema holding s's columns followed by o's columns, as
// produced by a join.
func (s *Schema) Concat(o *Schema) *Schema {
	return NewSchema(append(s.Columns(), o.Columns()...)...)
}

// Rename returns a copy of the schema with column i renamed.
func (s *Schema) Rename(i int, name string) *Schema {
	cols := s.Columns()
	cols[i].Name = name
	return NewSchema(cols...)
}

// String renders the schema as "(a INTEGER, b REAL)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column names and types.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if !strings.EqualFold(s.cols[i].Name, o.cols[i].Name) || s.cols[i].Type != o.cols[i].Type {
			return false
		}
	}
	return true
}

// Datum is a single dynamically-typed value, used for literals, row-oriented
// interfaces (INSERT ... VALUES, result iteration) and the wire protocol. The
// zero Datum is NULL.
type Datum struct {
	Type T
	Null bool
	B    bool
	I64  int64
	F64  float64
	S    string
}

// Null datum constructors.
func NullDatum(t T) Datum { return Datum{Type: t, Null: true} }

// BoolDatum returns a BOOLEAN datum.
func BoolDatum(v bool) Datum { return Datum{Type: Bool, B: v} }

// Int32Datum returns an INTEGER datum.
func Int32Datum(v int32) Datum { return Datum{Type: Int32, I64: int64(v)} }

// Int64Datum returns a BIGINT datum.
func Int64Datum(v int64) Datum { return Datum{Type: Int64, I64: v} }

// Float32Datum returns a REAL datum.
func Float32Datum(v float32) Datum { return Datum{Type: Float32, F64: float64(v)} }

// Float64Datum returns a DOUBLE datum.
func Float64Datum(v float64) Datum { return Datum{Type: Float64, F64: v} }

// StringDatum returns a VARCHAR datum.
func StringDatum(v string) Datum { return Datum{Type: String, S: v} }

// Float returns the datum as float64 (integers widen). It panics on
// non-numeric datums; callers perform type checking during binding.
func (d Datum) Float() float64 {
	switch d.Type {
	case Int32, Int64:
		return float64(d.I64)
	case Float32, Float64:
		return d.F64
	}
	panic(fmt.Sprintf("types: Float() on %s datum", d.Type))
}

// Int returns the datum as int64, truncating floats.
func (d Datum) Int() int64 {
	switch d.Type {
	case Int32, Int64:
		return d.I64
	case Float32, Float64:
		return int64(d.F64)
	}
	panic(fmt.Sprintf("types: Int() on %s datum", d.Type))
}

// String renders the datum for display.
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.Type {
	case Bool:
		if d.B {
			return "true"
		}
		return "false"
	case Int32, Int64:
		return fmt.Sprintf("%d", d.I64)
	case Float32:
		return fmt.Sprintf("%g", float32(d.F64))
	case Float64:
		return fmt.Sprintf("%g", d.F64)
	case String:
		return d.S
	}
	return "?"
}

// Compare orders two datums of the same type: -1, 0, +1. NULLs sort first.
func (d Datum) Compare(o Datum) int {
	if d.Null || o.Null {
		switch {
		case d.Null && o.Null:
			return 0
		case d.Null:
			return -1
		default:
			return 1
		}
	}
	switch d.Type {
	case Bool:
		switch {
		case d.B == o.B:
			return 0
		case !d.B:
			return -1
		default:
			return 1
		}
	case Int32, Int64:
		switch {
		case d.I64 < o.I64:
			return -1
		case d.I64 > o.I64:
			return 1
		default:
			return 0
		}
	case Float32, Float64:
		switch {
		case d.F64 < o.F64:
			return -1
		case d.F64 > o.F64:
			return 1
		default:
			return 0
		}
	case String:
		return strings.Compare(d.S, o.S)
	}
	return 0
}
