package types

import (
	"testing"
	"testing/quick"
)

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range []T{Bool, Int32, Int64, Float32, Float64, String} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseType("BLOBFISH"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestParseTypeAliases(t *testing.T) {
	tests := map[string]T{
		"int": Int32, "INTEGER": Int32, "bigint": Int64, "FLOAT": Float32,
		"real": Float32, "double": Float64, "text": String, "bool": Bool,
	}
	for name, want := range tests {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
}

func TestPromote(t *testing.T) {
	tests := []struct {
		a, b, want T
	}{
		{Int32, Int32, Int32},
		{Int32, Int64, Int64},
		{Int32, Float32, Float32},
		{Int64, Float32, Float64}, // int64 into float32 would lose too much
		{Int64, Float64, Float64},
		{Float32, Float64, Float64},
		{String, String, String},
	}
	for _, tc := range tests {
		got, err := Promote(tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Errorf("Promote(%v, %v) = %v, %v; want %v", tc.a, tc.b, got, err, tc.want)
		}
		// Promotion is symmetric.
		rev, err := Promote(tc.b, tc.a)
		if err != nil || rev != tc.want {
			t.Errorf("Promote(%v, %v) = %v, %v; want %v", tc.b, tc.a, rev, err, tc.want)
		}
	}
	if _, err := Promote(String, Int32); err == nil {
		t.Error("expected error promoting string with int")
	}
}

func TestSchemaLookupCaseInsensitive(t *testing.T) {
	s := NewSchema(Column{Name: "Id", Type: Int64}, Column{Name: "VAL", Type: Float32})
	if i, ok := s.Lookup("id"); !ok || i != 0 {
		t.Errorf("Lookup(id) = %d, %v", i, ok)
	}
	if i, ok := s.Lookup("val"); !ok || i != 1 {
		t.Errorf("Lookup(val) = %d, %v", i, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

func TestSchemaDuplicateNamesResolveFirst(t *testing.T) {
	s := NewSchema(Column{Name: "x", Type: Int32}, Column{Name: "x", Type: Float64})
	i, ok := s.Lookup("x")
	if !ok || i != 0 {
		t.Errorf("duplicate lookup = %d, %v; want first occurrence", i, ok)
	}
}

func TestSchemaConcatAndRename(t *testing.T) {
	a := NewSchema(Column{Name: "a", Type: Int32})
	b := NewSchema(Column{Name: "b", Type: Float64})
	c := a.Concat(b)
	if c.Len() != 2 || c.Col(1).Name != "b" {
		t.Errorf("concat wrong: %s", c)
	}
	r := c.Rename(1, "bee")
	if r.Col(1).Name != "bee" || c.Col(1).Name != "b" {
		t.Error("rename must not mutate the original")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema(Column{Name: "a", Type: Int32})
	b := NewSchema(Column{Name: "A", Type: Int32})
	c := NewSchema(Column{Name: "a", Type: Int64})
	if !a.Equal(b) {
		t.Error("case-insensitive equal failed")
	}
	if a.Equal(c) {
		t.Error("type mismatch should not be equal")
	}
}

func TestDatumCompareOrdering(t *testing.T) {
	if Int64Datum(1).Compare(Int64Datum(2)) >= 0 {
		t.Error("1 < 2 failed")
	}
	if Float32Datum(2.5).Compare(Float32Datum(2.5)) != 0 {
		t.Error("equality failed")
	}
	if StringDatum("a").Compare(StringDatum("b")) >= 0 {
		t.Error("string order failed")
	}
	if NullDatum(Int32).Compare(Int32Datum(-1000)) >= 0 {
		t.Error("NULL must sort first")
	}
}

func TestDatumCompareAntisymmetric(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		return Int64Datum(a).Compare(Int64Datum(b)) == -Int64Datum(b).Compare(Int64Datum(a))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDatumConversions(t *testing.T) {
	if Int32Datum(7).Float() != 7.0 {
		t.Error("int to float")
	}
	if Float64Datum(3.9).Int() != 3 {
		t.Error("float truncation")
	}
	if Float32Datum(1.5).String() != "1.5" {
		t.Errorf("float32 string = %q", Float32Datum(1.5).String())
	}
	if NullDatum(String).String() != "NULL" {
		t.Error("null display")
	}
	if BoolDatum(true).String() != "true" {
		t.Error("bool display")
	}
}

func TestTypeWidths(t *testing.T) {
	if Int32.Width() != 4 || Float64.Width() != 8 || Bool.Width() != 1 {
		t.Error("widths wrong")
	}
	if !Float32.IsFloat() || Int64.IsFloat() {
		t.Error("IsFloat wrong")
	}
	if !Int32.IsInteger() || Float32.IsInteger() {
		t.Error("IsInteger wrong")
	}
	if String.IsNumeric() {
		t.Error("string is not numeric")
	}
}
