package expr

import (
	"fmt"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// Op enumerates binary and unary operators.
type Op uint8

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// IsArithmetic reports whether the operator is numeric arithmetic.
func (o Op) IsArithmetic() bool { return o <= OpMod }

// BinOp is a binary operation; operands are widened to a common type at
// construction time.
type BinOp struct {
	Op   Op
	L, R Expr
	typ  types.T // result type
	argT types.T // common operand type
}

// NewBinOp builds and type-checks a binary operation, inserting casts so
// both operands share a type.
func NewBinOp(op Op, l, r Expr) (Expr, error) {
	switch {
	case op.IsArithmetic():
		common, err := types.Promote(l.Type(), r.Type())
		if err != nil {
			return nil, fmt.Errorf("expr: %s: %w", op, err)
		}
		if op == OpMod && !common.IsInteger() {
			return nil, fmt.Errorf("expr: %% requires integer operands, got %s", common)
		}
		return &BinOp{Op: op, L: NewCast(l, common), R: NewCast(r, common), typ: common, argT: common}, nil
	case op.IsComparison():
		common := l.Type()
		if l.Type() != r.Type() {
			var err error
			if common, err = types.Promote(l.Type(), r.Type()); err != nil {
				return nil, fmt.Errorf("expr: %s: %w", op, err)
			}
		}
		return &BinOp{Op: op, L: NewCast(l, common), R: NewCast(r, common), typ: types.Bool, argT: common}, nil
	case op == OpAnd || op == OpOr:
		if l.Type() != types.Bool || r.Type() != types.Bool {
			return nil, fmt.Errorf("expr: %s requires boolean operands, got %s and %s", op, l.Type(), r.Type())
		}
		return &BinOp{Op: op, L: l, R: r, typ: types.Bool, argT: types.Bool}, nil
	}
	return nil, fmt.Errorf("expr: %s is not a binary operator", op)
}

// Type implements Expr.
func (b *BinOp) Type() types.T { return b.typ }

// String implements Expr.
func (b *BinOp) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Eval implements Expr with typed fast paths for the numeric kernels the
// generated ML queries spend their time in.
func (b *BinOp) Eval(batch *vector.Batch) (*vector.Vector, error) {
	lv, err := b.L.Eval(batch)
	if err != nil {
		return nil, err
	}
	rv, err := b.R.Eval(batch)
	if err != nil {
		return nil, err
	}
	n := lv.Len()
	out := vector.New(b.typ, n)
	out.SetLen(n)

	if b.Op == OpAnd || b.Op == OpOr {
		evalLogic(b.Op, lv, rv, out)
		return out, nil
	}

	switch b.argT {
	case types.Float32:
		evalF32(b.Op, lv.Float32s(), rv.Float32s(), out)
	case types.Float64:
		evalF64(b.Op, lv.Float64s(), rv.Float64s(), out)
	case types.Int32:
		evalI32(b.Op, lv.Int32s(), rv.Int32s(), out)
	case types.Int64:
		evalI64(b.Op, lv.Int64s(), rv.Int64s(), out)
	default:
		if err := evalGeneric(b.Op, lv, rv, out); err != nil {
			return nil, err
		}
	}
	propagateNulls(out, lv, rv)
	return out, nil
}

func propagateNulls(out, l, r *vector.Vector) {
	if ln := l.Nulls(); ln != nil {
		for i, isNull := range ln {
			if isNull {
				out.SetNull(i)
			}
		}
	}
	if rn := r.Nulls(); rn != nil {
		for i, isNull := range rn {
			if isNull {
				out.SetNull(i)
			}
		}
	}
}

// evalLogic implements Kleene three-valued AND/OR.
func evalLogic(op Op, l, r, out *vector.Vector) {
	lb, rb, ob := l.Bools(), r.Bools(), out.Bools()
	for i := range ob {
		lNull, rNull := l.NullAt(i), r.NullAt(i)
		lt := !lNull && lb[i]
		rt := !rNull && rb[i]
		lf := !lNull && !lb[i]
		rf := !rNull && !rb[i]
		if op == OpAnd {
			switch {
			case lf || rf:
				ob[i] = false
			case lt && rt:
				ob[i] = true
			default:
				out.SetNull(i)
			}
		} else {
			switch {
			case lt || rt:
				ob[i] = true
			case lf && rf:
				ob[i] = false
			default:
				out.SetNull(i)
			}
		}
	}
}

func evalF32(op Op, l, r []float32, out *vector.Vector) {
	switch op {
	case OpAdd:
		o := out.Float32s()
		for i, v := range l {
			o[i] = v + r[i]
		}
	case OpSub:
		o := out.Float32s()
		for i, v := range l {
			o[i] = v - r[i]
		}
	case OpMul:
		o := out.Float32s()
		for i, v := range l {
			o[i] = v * r[i]
		}
	case OpDiv:
		o := out.Float32s()
		for i, v := range l {
			if r[i] == 0 {
				out.SetNull(i)
				continue
			}
			o[i] = v / r[i]
		}
	default:
		o := out.Bools()
		for i, v := range l {
			o[i] = cmpResult(op, compareF64(float64(v), float64(r[i])))
		}
	}
}

func evalF64(op Op, l, r []float64, out *vector.Vector) {
	switch op {
	case OpAdd:
		o := out.Float64s()
		for i, v := range l {
			o[i] = v + r[i]
		}
	case OpSub:
		o := out.Float64s()
		for i, v := range l {
			o[i] = v - r[i]
		}
	case OpMul:
		o := out.Float64s()
		for i, v := range l {
			o[i] = v * r[i]
		}
	case OpDiv:
		o := out.Float64s()
		for i, v := range l {
			if r[i] == 0 {
				out.SetNull(i)
				continue
			}
			o[i] = v / r[i]
		}
	default:
		o := out.Bools()
		for i, v := range l {
			o[i] = cmpResult(op, compareF64(v, r[i]))
		}
	}
}

func evalI32(op Op, l, r []int32, out *vector.Vector) {
	switch op {
	case OpAdd:
		o := out.Int32s()
		for i, v := range l {
			o[i] = v + r[i]
		}
	case OpSub:
		o := out.Int32s()
		for i, v := range l {
			o[i] = v - r[i]
		}
	case OpMul:
		o := out.Int32s()
		for i, v := range l {
			o[i] = v * r[i]
		}
	case OpDiv:
		o := out.Int32s()
		for i, v := range l {
			if r[i] == 0 {
				out.SetNull(i)
				continue
			}
			o[i] = v / r[i]
		}
	case OpMod:
		o := out.Int32s()
		for i, v := range l {
			if r[i] == 0 {
				out.SetNull(i)
				continue
			}
			o[i] = v % r[i]
		}
	default:
		o := out.Bools()
		for i, v := range l {
			o[i] = cmpResult(op, compareI64(int64(v), int64(r[i])))
		}
	}
}

func evalI64(op Op, l, r []int64, out *vector.Vector) {
	switch op {
	case OpAdd:
		o := out.Int64s()
		for i, v := range l {
			o[i] = v + r[i]
		}
	case OpSub:
		o := out.Int64s()
		for i, v := range l {
			o[i] = v - r[i]
		}
	case OpMul:
		o := out.Int64s()
		for i, v := range l {
			o[i] = v * r[i]
		}
	case OpDiv:
		o := out.Int64s()
		for i, v := range l {
			if r[i] == 0 {
				out.SetNull(i)
				continue
			}
			o[i] = v / r[i]
		}
	case OpMod:
		o := out.Int64s()
		for i, v := range l {
			if r[i] == 0 {
				out.SetNull(i)
				continue
			}
			o[i] = v % r[i]
		}
	default:
		o := out.Bools()
		for i, v := range l {
			o[i] = cmpResult(op, compareI64(v, r[i]))
		}
	}
}

func evalGeneric(op Op, l, r, out *vector.Vector) error {
	if !op.IsComparison() {
		return fmt.Errorf("expr: %s unsupported for %s operands", op, l.Type())
	}
	o := out.Bools()
	for i := range o {
		o[i] = cmpResult(op, l.Datum(i).Compare(r.Datum(i)))
	}
	return nil
}

func compareF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpResult(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// UnaryOp is NOT or numeric negation.
type UnaryOp struct {
	Op Op
	E  Expr
}

// NewUnaryOp builds and type-checks a unary operation.
func NewUnaryOp(op Op, e Expr) (Expr, error) {
	switch op {
	case OpNot:
		if e.Type() != types.Bool {
			return nil, fmt.Errorf("expr: NOT requires a boolean operand, got %s", e.Type())
		}
	case OpNeg:
		if !e.Type().IsNumeric() {
			return nil, fmt.Errorf("expr: unary - requires a numeric operand, got %s", e.Type())
		}
	default:
		return nil, fmt.Errorf("expr: %s is not a unary operator", op)
	}
	return &UnaryOp{Op: op, E: e}, nil
}

// Type implements Expr.
func (u *UnaryOp) Type() types.T { return u.E.Type() }

// String implements Expr.
func (u *UnaryOp) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.E) }

// Eval implements Expr.
func (u *UnaryOp) Eval(batch *vector.Batch) (*vector.Vector, error) {
	in, err := u.E.Eval(batch)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.New(u.Type(), n)
	out.SetLen(n)
	switch {
	case u.Op == OpNot:
		o, b := out.Bools(), in.Bools()
		for i, v := range b {
			o[i] = !v
		}
	case in.Type() == types.Float32:
		o, s := out.Float32s(), in.Float32s()
		for i, v := range s {
			o[i] = -v
		}
	case in.Type() == types.Float64:
		o, s := out.Float64s(), in.Float64s()
		for i, v := range s {
			o[i] = -v
		}
	case in.Type() == types.Int32:
		o, s := out.Int32s(), in.Int32s()
		for i, v := range s {
			o[i] = -v
		}
	case in.Type() == types.Int64:
		o, s := out.Int64s(), in.Int64s()
		for i, v := range s {
			o[i] = -v
		}
	}
	if nulls := in.Nulls(); nulls != nil {
		for i, isNull := range nulls {
			if isNull {
				out.SetNull(i)
			}
		}
	}
	return out, nil
}
