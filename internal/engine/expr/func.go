package expr

import (
	"fmt"
	"math"
	"strings"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// FuncKind identifies a builtin scalar function. The set covers standard SQL
// math plus the activation functions of Sec. 4.3.5; ML-To-SQL can either
// call TANH/SIGMOID/RELU directly (engines like Actian Vector provide them)
// or expand them to portable EXP/CASE formulations.
type FuncKind uint8

// Builtin scalar functions.
const (
	FuncExp FuncKind = iota
	FuncLn
	FuncSqrt
	FuncAbs
	FuncPow
	FuncFloor
	FuncCeil
	FuncSin
	FuncCos
	FuncTanh
	FuncSigmoid
	FuncRelu
	FuncGreatest
	FuncLeast
)

var funcByName = map[string]struct {
	kind  FuncKind
	nargs int
}{
	"EXP":      {FuncExp, 1},
	"LN":       {FuncLn, 1},
	"SQRT":     {FuncSqrt, 1},
	"ABS":      {FuncAbs, 1},
	"POWER":    {FuncPow, 2},
	"POW":      {FuncPow, 2},
	"FLOOR":    {FuncFloor, 1},
	"CEIL":     {FuncCeil, 1},
	"CEILING":  {FuncCeil, 1},
	"SIN":      {FuncSin, 1},
	"COS":      {FuncCos, 1},
	"TANH":     {FuncTanh, 1},
	"SIGMOID":  {FuncSigmoid, 1},
	"RELU":     {FuncRelu, 1},
	"GREATEST": {FuncGreatest, 2},
	"LEAST":    {FuncLeast, 2},
}

// Func is a builtin scalar function call over numeric arguments.
type Func struct {
	Kind FuncKind
	Name string
	Args []Expr
	typ  types.T
}

// NewFunc resolves a function by name and type-checks its arguments.
func NewFunc(name string, args []Expr) (Expr, error) {
	info, ok := funcByName[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %s", strings.ToUpper(name))
	}
	if len(args) != info.nargs {
		return nil, fmt.Errorf("expr: %s expects %d arguments, got %d", strings.ToUpper(name), info.nargs, len(args))
	}
	t := types.Float64
	for _, a := range args {
		if !a.Type().IsNumeric() {
			return nil, fmt.Errorf("expr: %s requires numeric arguments, got %s", strings.ToUpper(name), a.Type())
		}
	}
	// Functions stay in float32 when every argument is float32 (or
	// narrower); the ML queries run entirely in REAL, matching the 4-byte
	// weights of the relational model representation (Sec. 4.1).
	allNarrow := true
	for _, a := range args {
		if a.Type() == types.Float64 || a.Type() == types.Int64 {
			allNarrow = false
		}
	}
	if allNarrow {
		t = types.Float32
	}
	cargs := make([]Expr, len(args))
	for i, a := range args {
		cargs[i] = NewCast(a, t)
	}
	return &Func{Kind: info.kind, Name: strings.ToUpper(name), Args: cargs, typ: t}, nil
}

// Type implements Expr.
func (f *Func) Type() types.T { return f.typ }

// String implements Expr.
func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Eval implements Expr.
func (f *Func) Eval(b *vector.Batch) (*vector.Vector, error) {
	args := make([]*vector.Vector, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(b)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	n := args[0].Len()
	out := vector.New(f.typ, n)
	out.SetLen(n)
	if f.typ == types.Float32 {
		f.evalF32(args, out)
	} else {
		f.evalF64(args, out)
	}
	for _, a := range args {
		if nulls := a.Nulls(); nulls != nil {
			for i, isNull := range nulls {
				if isNull {
					out.SetNull(i)
				}
			}
		}
	}
	return out, nil
}

func (f *Func) evalF32(args []*vector.Vector, out *vector.Vector) {
	x := args[0].Float32s()
	o := out.Float32s()
	switch f.Kind {
	case FuncExp:
		for i, v := range x {
			o[i] = float32(math.Exp(float64(v)))
		}
	case FuncLn:
		for i, v := range x {
			o[i] = float32(math.Log(float64(v)))
		}
	case FuncSqrt:
		for i, v := range x {
			o[i] = float32(math.Sqrt(float64(v)))
		}
	case FuncAbs:
		for i, v := range x {
			if v < 0 {
				o[i] = -v
			} else {
				o[i] = v
			}
		}
	case FuncPow:
		y := args[1].Float32s()
		for i, v := range x {
			o[i] = float32(math.Pow(float64(v), float64(y[i])))
		}
	case FuncFloor:
		for i, v := range x {
			o[i] = float32(math.Floor(float64(v)))
		}
	case FuncCeil:
		for i, v := range x {
			o[i] = float32(math.Ceil(float64(v)))
		}
	case FuncSin:
		for i, v := range x {
			o[i] = float32(math.Sin(float64(v)))
		}
	case FuncCos:
		for i, v := range x {
			o[i] = float32(math.Cos(float64(v)))
		}
	case FuncTanh:
		for i, v := range x {
			o[i] = float32(math.Tanh(float64(v)))
		}
	case FuncSigmoid:
		for i, v := range x {
			o[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case FuncRelu:
		for i, v := range x {
			if v < 0 {
				o[i] = 0
			} else {
				o[i] = v
			}
		}
	case FuncGreatest:
		y := args[1].Float32s()
		for i, v := range x {
			if y[i] > v {
				o[i] = y[i]
			} else {
				o[i] = v
			}
		}
	case FuncLeast:
		y := args[1].Float32s()
		for i, v := range x {
			if y[i] < v {
				o[i] = y[i]
			} else {
				o[i] = v
			}
		}
	}
}

func (f *Func) evalF64(args []*vector.Vector, out *vector.Vector) {
	x := args[0].Float64s()
	o := out.Float64s()
	switch f.Kind {
	case FuncExp:
		for i, v := range x {
			o[i] = math.Exp(v)
		}
	case FuncLn:
		for i, v := range x {
			o[i] = math.Log(v)
		}
	case FuncSqrt:
		for i, v := range x {
			o[i] = math.Sqrt(v)
		}
	case FuncAbs:
		for i, v := range x {
			o[i] = math.Abs(v)
		}
	case FuncPow:
		y := args[1].Float64s()
		for i, v := range x {
			o[i] = math.Pow(v, y[i])
		}
	case FuncFloor:
		for i, v := range x {
			o[i] = math.Floor(v)
		}
	case FuncCeil:
		for i, v := range x {
			o[i] = math.Ceil(v)
		}
	case FuncSin:
		for i, v := range x {
			o[i] = math.Sin(v)
		}
	case FuncCos:
		for i, v := range x {
			o[i] = math.Cos(v)
		}
	case FuncTanh:
		for i, v := range x {
			o[i] = math.Tanh(v)
		}
	case FuncSigmoid:
		for i, v := range x {
			o[i] = 1 / (1 + math.Exp(-v))
		}
	case FuncRelu:
		for i, v := range x {
			o[i] = math.Max(0, v)
		}
	case FuncGreatest:
		y := args[1].Float64s()
		for i, v := range x {
			o[i] = math.Max(v, y[i])
		}
	case FuncLeast:
		y := args[1].Float64s()
		for i, v := range x {
			o[i] = math.Min(v, y[i])
		}
	}
}

// IsConst reports whether e is a literal (after folding).
func IsConst(e Expr) (types.Datum, bool) {
	if c, ok := e.(*Const); ok {
		return c.Val, true
	}
	return types.Datum{}, false
}

// Fold performs constant folding: any subtree whose leaves are all literals
// is evaluated once at plan time. The optimizer applies this before pushing
// predicates into scans.
func Fold(e Expr) Expr {
	switch t := e.(type) {
	case *BinOp:
		l, r := Fold(t.L), Fold(t.R)
		folded := &BinOp{Op: t.Op, L: l, R: r, typ: t.typ, argT: t.argT}
		if _, lok := IsConst(l); lok {
			if _, rok := IsConst(r); rok {
				if d, ok := evalConst(folded); ok {
					return NewConst(d)
				}
			}
		}
		return folded
	case *UnaryOp:
		in := Fold(t.E)
		folded := &UnaryOp{Op: t.Op, E: in}
		if _, ok := IsConst(in); ok {
			if d, ok := evalConst(folded); ok {
				return NewConst(d)
			}
		}
		return folded
	case *Cast:
		in := Fold(t.E)
		folded := &Cast{E: in, To: t.To}
		if _, ok := IsConst(in); ok {
			if d, ok := evalConst(folded); ok {
				return NewConst(d)
			}
		}
		return folded
	case *Func:
		args := make([]Expr, len(t.Args))
		allConst := true
		for i, a := range t.Args {
			args[i] = Fold(a)
			if _, ok := IsConst(args[i]); !ok {
				allConst = false
			}
		}
		folded := &Func{Kind: t.Kind, Name: t.Name, Args: args, typ: t.typ}
		if allConst {
			if d, ok := evalConst(folded); ok {
				return NewConst(d)
			}
		}
		return folded
	default:
		return e
	}
}

// evalConst evaluates a constant expression over a one-row dummy batch.
func evalConst(e Expr) (types.Datum, bool) {
	b := vector.NewBatch(types.NewSchema(), 1)
	b.SetLen(1)
	v, err := e.Eval(b)
	if err != nil || v.Len() != 1 {
		return types.Datum{}, false
	}
	return v.Datum(0), true
}
