// Package expr implements typed, vectorized expression evaluation for the
// query engine: column references, literals, arithmetic, comparisons,
// boolean logic, CASE, casts and scalar functions (including the activation
// functions ML-To-SQL emits). Expressions are bound against a schema at plan
// time, so evaluation is type-checked before the first batch flows.
package expr

import (
	"fmt"
	"strings"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// Expr is a bound, evaluable expression. Eval produces one output value per
// input row of the batch.
type Expr interface {
	// Type returns the expression's result type.
	Type() types.T
	// Eval evaluates the expression over a batch.
	Eval(b *vector.Batch) (*vector.Vector, error)
	// String renders the expression as SQL-ish text for EXPLAIN output.
	String() string
}

// ColRef reads column Idx of the input batch.
type ColRef struct {
	Idx  int
	Name string
	Typ  types.T
}

// NewColRef constructs a column reference.
func NewColRef(idx int, name string, t types.T) *ColRef {
	return &ColRef{Idx: idx, Name: name, Typ: t}
}

// Type implements Expr.
func (c *ColRef) Type() types.T { return c.Typ }

// Eval implements Expr; it returns the batch's vector without copying.
func (c *ColRef) Eval(b *vector.Batch) (*vector.Vector, error) {
	if c.Idx >= len(b.Vecs) {
		return nil, fmt.Errorf("expr: column %d (%s) out of range (batch has %d)", c.Idx, c.Name, len(b.Vecs))
	}
	return b.Vecs[c.Idx], nil
}

// String implements Expr.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value broadcast to the batch length.
type Const struct {
	Val types.Datum
}

// NewConst constructs a literal expression.
func NewConst(d types.Datum) *Const { return &Const{Val: d} }

// Type implements Expr.
func (c *Const) Type() types.T { return c.Val.Type }

// Eval implements Expr.
func (c *Const) Eval(b *vector.Batch) (*vector.Vector, error) {
	n := b.Len()
	v := vector.New(c.Val.Type, n)
	v.SetLen(n)
	for i := 0; i < n; i++ {
		v.SetDatum(i, c.Val)
	}
	return v, nil
}

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Type == types.String {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// Cast converts its input to a target type.
type Cast struct {
	E  Expr
	To types.T
}

// NewCast constructs a cast expression.
func NewCast(e Expr, to types.T) Expr {
	if e.Type() == to {
		return e
	}
	return &Cast{E: e, To: to}
}

// Type implements Expr.
func (c *Cast) Type() types.T { return c.To }

// Eval implements Expr.
func (c *Cast) Eval(b *vector.Batch) (*vector.Vector, error) {
	in, err := c.E.Eval(b)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.New(c.To, n)
	out.SetLen(n)
	// Fast numeric paths for the conversions the ML queries exercise.
	switch {
	case in.Type() == types.Float64 && c.To == types.Float32:
		dst, src := out.Float32s(), in.Float64s()
		for i, v := range src {
			dst[i] = float32(v)
		}
	case in.Type() == types.Float32 && c.To == types.Float64:
		dst, src := out.Float64s(), in.Float32s()
		for i, v := range src {
			dst[i] = float64(v)
		}
	case in.Type() == types.Int32 && c.To == types.Float32:
		dst, src := out.Float32s(), in.Int32s()
		for i, v := range src {
			dst[i] = float32(v)
		}
	case in.Type() == types.Int32 && c.To == types.Int64:
		dst, src := out.Int64s(), in.Int32s()
		for i, v := range src {
			dst[i] = int64(v)
		}
	default:
		for i := 0; i < n; i++ {
			d := in.Datum(i)
			if d.Null {
				out.SetNull(i)
				continue
			}
			out.SetDatum(i, convertDatum(d, c.To))
		}
	}
	if nulls := in.Nulls(); nulls != nil {
		for i, isNull := range nulls {
			if isNull {
				out.SetNull(i)
			}
		}
	}
	return out, nil
}

func convertDatum(d types.Datum, to types.T) types.Datum {
	switch to {
	case types.Bool:
		return types.BoolDatum(d.Type == types.Bool && d.B)
	case types.Int32:
		return types.Int32Datum(int32(d.Int()))
	case types.Int64:
		return types.Int64Datum(d.Int())
	case types.Float32:
		return types.Float32Datum(float32(d.Float()))
	case types.Float64:
		return types.Float64Datum(d.Float())
	case types.String:
		return types.StringDatum(d.String())
	}
	return types.NullDatum(to)
}

// String implements Expr.
func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }

// IsNull tests values for NULL (IS NULL / IS NOT NULL). Unlike comparisons,
// its result is never NULL itself.
type IsNull struct {
	E   Expr
	Not bool
}

// NewIsNull constructs an IS [NOT] NULL test.
func NewIsNull(e Expr, not bool) *IsNull { return &IsNull{E: e, Not: not} }

// Type implements Expr.
func (i *IsNull) Type() types.T { return types.Bool }

// Eval implements Expr.
func (i *IsNull) Eval(b *vector.Batch) (*vector.Vector, error) {
	in, err := i.E.Eval(b)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	out := vector.New(types.Bool, n)
	out.SetLen(n)
	o := out.Bools()
	for r := 0; r < n; r++ {
		o[r] = in.NullAt(r) != i.Not
	}
	return out, nil
}

// String implements Expr.
func (i *IsNull) String() string {
	if i.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// Case is a searched CASE expression. ML-To-SQL's dense input function
// (Listing 3) selects the i-th input column per node with exactly this
// construct.
type Case struct {
	Whens []When
	Else  Expr // nil means NULL
	Typ   types.T
}

// When is one WHEN cond THEN value arm.
type When struct {
	Cond Expr
	Then Expr
}

// NewCase builds a CASE expression, promoting all arm types to a common
// result type.
func NewCase(whens []When, elseE Expr) (*Case, error) {
	if len(whens) == 0 {
		return nil, fmt.Errorf("expr: CASE requires at least one WHEN")
	}
	t := whens[0].Then.Type()
	for _, w := range whens[1:] {
		var err error
		if t, err = types.Promote(t, w.Then.Type()); err != nil {
			return nil, fmt.Errorf("expr: CASE arms: %w", err)
		}
	}
	if elseE != nil {
		var err error
		if t, err = types.Promote(t, elseE.Type()); err != nil {
			return nil, fmt.Errorf("expr: CASE else: %w", err)
		}
	}
	for _, w := range whens {
		if w.Cond.Type() != types.Bool {
			return nil, fmt.Errorf("expr: CASE condition must be boolean, got %s", w.Cond.Type())
		}
	}
	return &Case{Whens: whens, Else: elseE, Typ: t}, nil
}

// Type implements Expr.
func (c *Case) Type() types.T { return c.Typ }

// Eval implements Expr. All arms are evaluated over the full batch and the
// result is assembled per row; with the engine's small batches this keeps
// the code vectorized without branch-heavy row loops per arm.
func (c *Case) Eval(b *vector.Batch) (*vector.Vector, error) {
	n := b.Len()
	conds := make([]*vector.Vector, len(c.Whens))
	thens := make([]*vector.Vector, len(c.Whens))
	for i, w := range c.Whens {
		cv, err := w.Cond.Eval(b)
		if err != nil {
			return nil, err
		}
		tv, err := w.Then.Eval(b)
		if err != nil {
			return nil, err
		}
		conds[i], thens[i] = cv, tv
	}
	var elseV *vector.Vector
	if c.Else != nil {
		var err error
		if elseV, err = c.Else.Eval(b); err != nil {
			return nil, err
		}
	}
	out := vector.New(c.Typ, n)
	out.SetLen(n)
	for r := 0; r < n; r++ {
		matched := false
		for i, cv := range conds {
			if !cv.NullAt(r) && cv.Bools()[r] {
				d := thens[i].Datum(r)
				if d.Null {
					out.SetNull(r)
				} else {
					out.SetDatum(r, convertDatum(d, c.Typ))
				}
				matched = true
				break
			}
		}
		if !matched {
			if elseV == nil {
				out.SetNull(r)
			} else if d := elseV.Datum(r); d.Null {
				out.SetNull(r)
			} else {
				out.SetDatum(r, convertDatum(d, c.Typ))
			}
		}
	}
	return out, nil
}

// String implements Expr.
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}
