package expr

import (
	"math"
	"testing"
	"testing/quick"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

func f32Batch(name string, vals ...float32) (*vector.Batch, *ColRef) {
	schema := types.NewSchema(types.Column{Name: name, Type: types.Float32})
	b := vector.NewBatch(schema, len(vals))
	for _, v := range vals {
		_ = b.AppendRow(types.Float32Datum(v))
	}
	return b, NewColRef(0, name, types.Float32)
}

func evalOne(t *testing.T, e Expr, b *vector.Batch) *vector.Vector {
	t.Helper()
	v, err := e.Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticF32(t *testing.T) {
	b, x := f32Batch("x", 1, 2, 3)
	for _, tc := range []struct {
		op   Op
		want []float32
	}{
		{OpAdd, []float32{2, 4, 6}},
		{OpSub, []float32{0, 0, 0}},
		{OpMul, []float32{1, 4, 9}},
		{OpDiv, []float32{1, 1, 1}},
	} {
		e, err := NewBinOp(tc.op, x, x)
		if err != nil {
			t.Fatal(err)
		}
		v := evalOne(t, e, b)
		for i, w := range tc.want {
			if v.Float32s()[i] != w {
				t.Errorf("%v: got %v want %v", tc.op, v.Float32s(), tc.want)
				break
			}
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	b, x := f32Batch("x", 1, 0)
	e, _ := NewBinOp(OpDiv, NewConst(types.Float32Datum(10)), x)
	v := evalOne(t, e, b)
	if v.NullAt(0) || !v.NullAt(1) {
		t.Errorf("division by zero should be NULL: %v nulls=%v", v.Float32s(), v.Nulls())
	}
	// Integer modulo by zero likewise.
	schema := types.NewSchema(types.Column{Name: "i", Type: types.Int32})
	ib := vector.NewBatch(schema, 2)
	_ = ib.AppendRow(types.Int32Datum(3))
	_ = ib.AppendRow(types.Int32Datum(0))
	m, _ := NewBinOp(OpMod, NewConst(types.Int32Datum(7)), NewColRef(0, "i", types.Int32))
	mv := evalOne(t, m, ib)
	if mv.Int32s()[0] != 1 || !mv.NullAt(1) {
		t.Errorf("mod wrong: %v", mv.Int32s())
	}
}

func TestComparisonPromotion(t *testing.T) {
	// Int literal compared against a REAL column must promote, keeping the
	// generated ML queries type-correct.
	b, x := f32Batch("x", 0.5, 1.5)
	e, err := NewBinOp(OpGt, x, NewConst(types.Int32Datum(1)))
	if err != nil {
		t.Fatal(err)
	}
	v := evalOne(t, e, b)
	if v.Bools()[0] || !v.Bools()[1] {
		t.Errorf("comparison wrong: %v", v.Bools())
	}
}

func TestLogicKleene(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Type: types.Bool},
		types.Column{Name: "b", Type: types.Bool},
	)
	b := vector.NewBatch(schema, 3)
	_ = b.AppendRow(types.BoolDatum(true), types.NullDatum(types.Bool))
	_ = b.AppendRow(types.BoolDatum(false), types.NullDatum(types.Bool))
	_ = b.AppendRow(types.BoolDatum(true), types.BoolDatum(false))
	a := NewColRef(0, "a", types.Bool)
	bb := NewColRef(1, "b", types.Bool)

	and, _ := NewBinOp(OpAnd, a, bb)
	av := evalOne(t, and, b)
	// true AND NULL = NULL; false AND NULL = false; true AND false = false.
	if !av.NullAt(0) || av.NullAt(1) || av.Bools()[1] || av.Bools()[2] {
		t.Errorf("AND kleene wrong: %v nulls %v", av.Bools(), av.Nulls())
	}
	or, _ := NewBinOp(OpOr, a, bb)
	ov := evalOne(t, or, b)
	// true OR NULL = true; false OR NULL = NULL.
	if !ov.Bools()[0] || !ov.NullAt(1) {
		t.Errorf("OR kleene wrong: %v nulls %v", ov.Bools(), ov.Nulls())
	}
}

func TestCaseSelectsFirstMatch(t *testing.T) {
	b, x := f32Batch("x", -1, 0.5, 2)
	gt0, _ := NewBinOp(OpGt, x, NewConst(types.Int32Datum(0)))
	gt1, _ := NewBinOp(OpGt, x, NewConst(types.Int32Datum(1)))
	c, err := NewCase([]When{
		{Cond: gt1, Then: NewConst(types.Float32Datum(100))},
		{Cond: gt0, Then: NewConst(types.Float32Datum(10))},
	}, NewConst(types.Float32Datum(1)))
	if err != nil {
		t.Fatal(err)
	}
	v := evalOne(t, c, b)
	want := []float32{1, 10, 100}
	for i, w := range want {
		if v.Float32s()[i] != w {
			t.Errorf("case[%d] = %v, want %v", i, v.Float32s()[i], w)
		}
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	b, x := f32Batch("x", -5)
	gt0, _ := NewBinOp(OpGt, x, NewConst(types.Int32Datum(0)))
	c, _ := NewCase([]When{{Cond: gt0, Then: x}}, nil)
	v := evalOne(t, c, b)
	if !v.NullAt(0) {
		t.Error("unmatched CASE without ELSE should be NULL")
	}
}

func TestFuncsF32(t *testing.T) {
	b, x := f32Batch("x", -2, 0, 2)
	checks := map[string][]float64{
		"RELU":    {0, 0, 2},
		"ABS":     {2, 0, 2},
		"SIGMOID": {1 / (1 + math.Exp(2)), 0.5, 1 / (1 + math.Exp(-2))},
		"TANH":    {math.Tanh(-2), 0, math.Tanh(2)},
		"EXP":     {math.Exp(-2), 1, math.Exp(2)},
	}
	for name, want := range checks {
		f, err := NewFunc(name, []Expr{x})
		if err != nil {
			t.Fatal(err)
		}
		if f.Type() != types.Float32 {
			t.Errorf("%s over REAL should stay REAL, got %v", name, f.Type())
		}
		v := evalOne(t, f, b)
		for i, w := range want {
			if math.Abs(float64(v.Float32s()[i])-w) > 1e-5 {
				t.Errorf("%s[%d] = %v, want %v", name, i, v.Float32s()[i], w)
			}
		}
	}
}

func TestFuncArityAndUnknown(t *testing.T) {
	_, x := f32Batch("x", 1)
	if _, err := NewFunc("EXP", []Expr{x, x}); err == nil {
		t.Error("arity error expected")
	}
	if _, err := NewFunc("FROBNICATE", []Expr{x}); err == nil {
		t.Error("unknown function error expected")
	}
}

func TestCastNumericFastPaths(t *testing.T) {
	b, x := f32Batch("x", 1.7)
	c := NewCast(x, types.Float64)
	v := evalOne(t, c, b)
	if math.Abs(v.Float64s()[0]-1.7) > 1e-6 {
		t.Errorf("cast f32→f64 = %v", v.Float64s()[0])
	}
	if NewCast(x, types.Float32) != x {
		t.Error("no-op cast should return the input expression")
	}
}

func TestFoldConstants(t *testing.T) {
	two := NewConst(types.Int32Datum(2))
	three := NewConst(types.Int32Datum(3))
	add, _ := NewBinOp(OpAdd, two, three)
	mul, _ := NewBinOp(OpMul, add, NewConst(types.Int32Datum(10)))
	folded := Fold(mul)
	d, ok := IsConst(folded)
	if !ok || d.I64 != 50 {
		t.Errorf("Fold = %v (const=%v)", folded, ok)
	}
	// Non-constant parts survive.
	_, x := f32Batch("x", 1)
	mixed, _ := NewBinOp(OpAdd, x, add)
	foldedMixed := Fold(mixed)
	if _, ok := IsConst(foldedMixed); ok {
		t.Error("expression with column refs must not fold to a constant")
	}
}

func TestUnaryOps(t *testing.T) {
	b, x := f32Batch("x", 2.5)
	neg, err := NewUnaryOp(OpNeg, x)
	if err != nil {
		t.Fatal(err)
	}
	if v := evalOne(t, neg, b); v.Float32s()[0] != -2.5 {
		t.Errorf("neg = %v", v.Float32s()[0])
	}
	gt, _ := NewBinOp(OpGt, x, NewConst(types.Int32Datum(0)))
	not, err := NewUnaryOp(OpNot, gt)
	if err != nil {
		t.Fatal(err)
	}
	if v := evalOne(t, not, b); v.Bools()[0] {
		t.Error("NOT true = true?")
	}
	if _, err := NewUnaryOp(OpNot, x); err == nil {
		t.Error("NOT over numeric should fail binding")
	}
}

func TestSigmoidIdentityProperty(t *testing.T) {
	// SIGMOID(x) == 1 / (1 + EXP(-x)) — the portable expansion ML-To-SQL
	// emits must agree with the native function.
	err := quick.Check(func(raw float32) bool {
		x := raw
		if x != x || x > 50 || x < -50 {
			x = 0
		}
		b, col := f32Batch("x", x)
		native, _ := NewFunc("SIGMOID", []Expr{col})
		negX, _ := NewUnaryOp(OpNeg, col)
		expNegX, _ := NewFunc("EXP", []Expr{negX})
		onePlus, _ := NewBinOp(OpAdd, NewConst(types.Float32Datum(1)), expNegX)
		portable, _ := NewBinOp(OpDiv, NewConst(types.Float32Datum(1)), onePlus)
		nv, err1 := native.Eval(b)
		pv, err2 := portable.Eval(b)
		if err1 != nil || err2 != nil {
			return false
		}
		d := float64(nv.Float32s()[0] - pv.Float32s()[0])
		return math.Abs(d) < 1e-5
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
