// Package storage implements the engine's column store: tables are split
// into partitions (the unit of parallelism, Sec. 4.4/5.2), partitions hold
// one chunk per column, and chunks are sequences of compressed blocks, each
// carrying a MinMax zone map (Moerkotte's Small Materialized Aggregates,
// which the paper relies on for block pruning of the model table).
package storage

import (
	"fmt"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// BlockSize is the number of values per column block.
const BlockSize = 8192

// encoding identifies the physical layout of a block.
type encoding uint8

const (
	encRaw encoding = iota
	// encRLE stores (value, runLength) pairs; extremely effective on the
	// model table, where e.g. the Layer column repeats for every edge of a
	// layer, and on sparse weight columns full of zeros.
	encRLE
	// encConst stores a single value for the whole block.
	encConst
	// encDict stores string blocks as a dictionary plus int32 codes.
	encDict
)

// block is one compressed run of up to BlockSize values of a single column,
// together with its zone map.
type block struct {
	typ  types.T
	enc  encoding
	n    int
	min  types.Datum // zone map; Null for empty/string-less support
	max  types.Datum
	base types.Datum // encConst payload
	// nulls flags NULL positions; nil when the block has none. The typed
	// payloads store zero values at NULL slots.
	nulls []bool

	// encRaw payloads (one populated per type).
	b   []bool
	i32 []int32
	i64 []int64
	f32 []float32
	f64 []float64
	str []string

	// encRLE payload: runs[i] repeated runLen[i] times.
	runLen []int32

	// encDict payload.
	dict  []string
	codes []int32
}

// buildBlock compresses vals[lo:hi] of vec into a block, choosing the
// cheapest encoding.
func buildBlock(vec *vector.Vector, lo, hi int) *block {
	b := &block{typ: vec.Type(), n: hi - lo}
	if src := vec.Nulls(); src != nil {
		for i := lo; i < hi; i++ {
			if src[i] {
				if b.nulls == nil {
					b.nulls = make([]bool, hi-lo)
				}
				b.nulls[i-lo] = true
			}
		}
	}
	b.computeZoneMap(vec, lo, hi)

	// Probe run structure once to choose encoding.
	runs := 1
	for i := lo + 1; i < hi; i++ {
		if vec.Datum(i).Compare(vec.Datum(i-1)) != 0 {
			runs++
		}
	}
	switch {
	case runs == 1:
		b.enc = encConst
		b.base = vec.Datum(lo)
	case b.typ != types.String && runs*3 < b.n:
		b.enc = encRLE
		b.encodeRLE(vec, lo, hi)
	case b.typ == types.String && runs*2 < b.n:
		b.enc = encDict
		b.encodeDict(vec, lo, hi)
	default:
		b.enc = encRaw
		b.encodeRaw(vec, lo, hi)
	}
	return b
}

func (b *block) computeZoneMap(vec *vector.Vector, lo, hi int) {
	if !b.typ.IsNumeric() || hi == lo {
		return
	}
	mn, mx := vec.Datum(lo), vec.Datum(lo)
	for i := lo + 1; i < hi; i++ {
		d := vec.Datum(i)
		if d.Compare(mn) < 0 {
			mn = d
		}
		if d.Compare(mx) > 0 {
			mx = d
		}
	}
	b.min, b.max = mn, mx
}

func (b *block) encodeRaw(vec *vector.Vector, lo, hi int) {
	switch b.typ {
	case types.Bool:
		b.b = append([]bool(nil), vec.Bools()[lo:hi]...)
	case types.Int32:
		b.i32 = append([]int32(nil), vec.Int32s()[lo:hi]...)
	case types.Int64:
		b.i64 = append([]int64(nil), vec.Int64s()[lo:hi]...)
	case types.Float32:
		b.f32 = append([]float32(nil), vec.Float32s()[lo:hi]...)
	case types.Float64:
		b.f64 = append([]float64(nil), vec.Float64s()[lo:hi]...)
	case types.String:
		b.str = append([]string(nil), vec.Strings()[lo:hi]...)
	}
}

func (b *block) encodeRLE(vec *vector.Vector, lo, hi int) {
	appendVal := func(i int) {
		switch b.typ {
		case types.Bool:
			b.b = append(b.b, vec.Bools()[i])
		case types.Int32:
			b.i32 = append(b.i32, vec.Int32s()[i])
		case types.Int64:
			b.i64 = append(b.i64, vec.Int64s()[i])
		case types.Float32:
			b.f32 = append(b.f32, vec.Float32s()[i])
		case types.Float64:
			b.f64 = append(b.f64, vec.Float64s()[i])
		}
	}
	appendVal(lo)
	b.runLen = append(b.runLen, 1)
	for i := lo + 1; i < hi; i++ {
		if vec.Datum(i).Compare(vec.Datum(i-1)) == 0 {
			b.runLen[len(b.runLen)-1]++
		} else {
			appendVal(i)
			b.runLen = append(b.runLen, 1)
		}
	}
}

func (b *block) encodeDict(vec *vector.Vector, lo, hi int) {
	index := map[string]int32{}
	strs := vec.Strings()
	for i := lo; i < hi; i++ {
		s := strs[i]
		code, ok := index[s]
		if !ok {
			code = int32(len(b.dict))
			index[s] = code
			b.dict = append(b.dict, s)
		}
		b.codes = append(b.codes, code)
	}
}

// decodeInto appends values [lo:hi) of the block to dst, restoring NULLs.
func (b *block) decodeInto(dst *vector.Vector, lo, hi int) {
	start := dst.Len()
	defer func() {
		if b.nulls == nil {
			return
		}
		for i := lo; i < hi; i++ {
			if b.nulls[i] {
				dst.SetNull(start + i - lo)
			}
		}
	}()
	switch b.enc {
	case encConst:
		for i := lo; i < hi; i++ {
			dst.AppendDatum(b.base)
		}
	case encRaw:
		switch b.typ {
		case types.Bool:
			for _, v := range b.b[lo:hi] {
				dst.AppendDatum(types.BoolDatum(v))
			}
		case types.Int32:
			appendInt32s(dst, b.i32[lo:hi])
		case types.Int64:
			appendInt64s(dst, b.i64[lo:hi])
		case types.Float32:
			appendFloat32s(dst, b.f32[lo:hi])
		case types.Float64:
			appendFloat64s(dst, b.f64[lo:hi])
		case types.String:
			for _, v := range b.str[lo:hi] {
				dst.AppendDatum(types.StringDatum(v))
			}
		}
	case encRLE:
		pos := 0
		for r, rl := range b.runLen {
			runEnd := pos + int(rl)
			from, to := max(lo, pos), min(hi, runEnd)
			for i := from; i < to; i++ {
				dst.AppendDatum(b.runDatum(r))
			}
			pos = runEnd
			if pos >= hi {
				break
			}
		}
	case encDict:
		for _, code := range b.codes[lo:hi] {
			dst.AppendDatum(types.StringDatum(b.dict[code]))
		}
	}
}

func appendInt32s(dst *vector.Vector, vs []int32) {
	for _, v := range vs {
		dst.AppendDatum(types.Int32Datum(v))
	}
}

func appendInt64s(dst *vector.Vector, vs []int64) {
	for _, v := range vs {
		dst.AppendDatum(types.Int64Datum(v))
	}
}

func appendFloat32s(dst *vector.Vector, vs []float32) {
	for _, v := range vs {
		dst.AppendDatum(types.Float32Datum(v))
	}
}

func appendFloat64s(dst *vector.Vector, vs []float64) {
	for _, v := range vs {
		dst.AppendDatum(types.Float64Datum(v))
	}
}

func (b *block) runDatum(r int) types.Datum {
	switch b.typ {
	case types.Bool:
		return types.BoolDatum(b.b[r])
	case types.Int32:
		return types.Int32Datum(b.i32[r])
	case types.Int64:
		return types.Int64Datum(b.i64[r])
	case types.Float32:
		return types.Float32Datum(b.f32[r])
	case types.Float64:
		return types.Float64Datum(b.f64[r])
	}
	panic(fmt.Sprintf("storage: runDatum on %v block", b.typ))
}

// memSize approximates the compressed footprint of the block in bytes.
func (b *block) memSize() int64 {
	var s int64
	s += int64(len(b.b)) + int64(len(b.i32))*4 + int64(len(b.i64))*8 +
		int64(len(b.f32))*4 + int64(len(b.f64))*8 + int64(len(b.runLen))*4 +
		int64(len(b.codes))*4 + int64(len(b.nulls))
	for _, v := range b.str {
		s += int64(len(v)) + 16
	}
	for _, v := range b.dict {
		s += int64(len(v)) + 16
	}
	return s
}

// overlaps reports whether the block's zone map intersects [lo, hi]; a nil
// bound is unbounded. Blocks without zone maps always overlap.
func (b *block) overlaps(lo, hi *types.Datum) bool {
	if b.min.Type == types.Unknown {
		return true
	}
	if lo != nil && b.max.Compare(*lo) < 0 {
		return false
	}
	if hi != nil && b.min.Compare(*hi) > 0 {
		return false
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
