package storage

import (
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// VirtualTable is a read-only table whose rows are synthesized on demand
// from live engine state (the query flight recorder, the metrics registry,
// the model artifact cache, ...) rather than stored in blocks. A scan takes
// one Snapshot at Open and then streams the returned batches without
// copying them again, so SELECT over a virtual table sees a consistent
// point-in-time view regardless of how long the reader takes to drain it.
//
// Implementations live next to the state they expose; the catalog only
// needs the interface. Snapshot must be safe for concurrent use.
type VirtualTable interface {
	// Name is the fully qualified table name, e.g. "system.queries".
	Name() string
	// Schema describes the synthesized columns.
	Schema() *types.Schema
	// Snapshot materializes the current rows as ready-to-stream batches.
	// The caller owns the returned batches; the implementation must not
	// retain or mutate them afterwards.
	Snapshot() ([]*vector.Batch, error)
}

// BatchBuilder accumulates datum rows into vector.Size-capped batches; the
// standard way for VirtualTable implementations to build a Snapshot.
type BatchBuilder struct {
	schema  *types.Schema
	batches []*vector.Batch
	cur     *vector.Batch
}

// NewBatchBuilder starts a builder for the given schema.
func NewBatchBuilder(schema *types.Schema) *BatchBuilder {
	return &BatchBuilder{schema: schema}
}

// Append adds one row. The row must match the schema arity; a mismatch is a
// programming error in the virtual table and panics.
func (b *BatchBuilder) Append(row ...types.Datum) {
	if b.cur == nil || b.cur.Len() >= vector.Size {
		b.cur = vector.NewBatch(b.schema, vector.Size)
		b.batches = append(b.batches, b.cur)
	}
	if err := b.cur.AppendRow(row...); err != nil {
		panic(err)
	}
}

// Batches returns the accumulated batches (nil when no rows were appended).
func (b *BatchBuilder) Batches() []*vector.Batch { return b.batches }
