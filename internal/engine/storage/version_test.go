package storage

import (
	"math/rand"
	"sync"
	"testing"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

func TestVersionBumpsOnAppend(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{Partitions: 2})
	if tbl.Version() != 0 {
		t.Fatalf("fresh table version = %d, want 0", tbl.Version())
	}
	rng := rand.New(rand.NewSource(5))
	loadRows(t, tbl, 10, rng)
	if got := tbl.Version(); got != 10 {
		t.Errorf("version after 10 appends = %d, want 10", got)
	}
	v := tbl.Version()
	loadRows(t, tbl, 1, rng)
	if tbl.Version() <= v {
		t.Errorf("version did not advance on append: %d -> %d", v, tbl.Version())
	}
}

func TestReplacePartition(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{Partitions: 2})
	rng := rand.New(rand.NewSource(6))
	loadRows(t, tbl, 100, rng)
	v := tbl.Version()

	// Keep only even ids of partition 0.
	sc, err := tbl.NewScanner(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var keep [][]types.Datum
	buf := vector.NewBatch(sc.Schema(), vector.Size)
	for sc.Next(buf) {
		for i := 0; i < buf.Len(); i++ {
			if buf.Vecs[0].Int64s()[i]%2 == 0 {
				keep = append(keep, buf.Row(i))
			}
		}
	}
	if err := tbl.ReplacePartition(0, keep); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() <= v {
		t.Errorf("version did not advance on replace: %d -> %d", v, tbl.Version())
	}
	if got := tbl.PartitionRows(0); got != len(keep) {
		t.Errorf("partition 0 has %d rows after replace, want %d", got, len(keep))
	}
	got := scanAll(t, tbl, nil, nil)
	if want := len(keep) + tbl.PartitionRows(1); got.Len() != want {
		t.Errorf("scanned %d rows after replace, want %d", got.Len(), want)
	}

	if err := tbl.ReplacePartition(9, nil); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := tbl.ReplacePartition(0, [][]types.Datum{{types.Int64Datum(1)}}); err == nil {
		t.Error("expected arity error")
	}
}

func TestReplacePartitionCrossesBlockBoundary(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	tbl := NewTable("t", schema, Options{Partitions: 1})
	n := 2*BlockSize + 37
	rows := make([][]types.Datum, n)
	for i := range rows {
		rows[i] = []types.Datum{types.Int64Datum(int64(i))}
	}
	if err := tbl.ReplacePartition(0, rows); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, tbl, nil, nil)
	if got.Len() != n {
		t.Fatalf("scanned %d rows, want %d", got.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got.Vecs[0].Int64s()[i] != int64(i) {
			t.Fatalf("row %d = %d after replace", i, got.Vecs[0].Int64s()[i])
		}
	}
}

// TestScannerSnapshotSurvivesReplace opens a scanner, replaces the partition
// underneath it, and checks the scan still returns the pre-replace contents.
func TestScannerSnapshotSurvivesReplace(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	tbl := NewTable("t", schema, Options{Partitions: 1})
	app := tbl.NewAppender()
	const n = 3 * BlockSize
	for i := 0; i < n; i++ {
		_ = app.AppendRow(types.Int64Datum(int64(i)))
	}
	app.Close()

	sc, err := tbl.NewScanner(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.ReplacePartition(0, nil); err != nil { // wipe it
		t.Fatal(err)
	}
	buf := vector.NewBatch(sc.Schema(), vector.Size)
	got := 0
	for sc.Next(buf) {
		got += buf.Len()
	}
	if got != n {
		t.Errorf("snapshot scan returned %d rows, want pre-replace %d", got, n)
	}
	// A fresh scanner sees the new (empty) contents.
	sc2, _ := tbl.NewScanner(0, nil, nil)
	if sc2.Next(buf) {
		t.Error("fresh scanner returned rows from replaced-away partition")
	}
}

// TestConcurrentScanAndMutate hammers a table with concurrent appends,
// partition replacements, and scans. Run under -race this verifies DML and
// queries never touch shared state unsynchronized.
func TestConcurrentScanAndMutate(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	tbl := NewTable("t", schema, Options{Partitions: 2})
	app := tbl.NewAppender()
	for i := 0; i < 2*BlockSize; i++ {
		_ = app.AppendRow(types.Int64Datum(int64(i)))
	}
	app.Close()

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: appends on one goroutine (Appender is single-writer),
	// replacements on another; both loop until the readers are done.
	writers.Add(1)
	go func() {
		defer writers.Done()
		a := tbl.NewAppender()
		for i := 0; ; i++ {
			select {
			case <-stop:
				a.Close()
				return
			default:
				_ = a.AppendRowToPartition(0, types.Int64Datum(int64(i)))
			}
		}
	}()
	writers.Add(1)
	go func() {
		defer writers.Done()
		rows := make([][]types.Datum, BlockSize/2)
		for i := range rows {
			rows[i] = []types.Datum{types.Int64Datum(int64(-i))}
		}
		for {
			select {
			case <-stop:
				return
			default:
				if err := tbl.ReplacePartition(1, rows); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Readers bound the test duration.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := 0; k < 50; k++ {
				for p := 0; p < 2; p++ {
					sc, err := tbl.NewScanner(p, nil, nil)
					if err != nil {
						t.Error(err)
						return
					}
					buf := vector.NewBatch(sc.Schema(), vector.Size)
					for sc.Next(buf) {
					}
				}
				_ = tbl.RowCount()
				_ = tbl.Version()
				_ = tbl.MemSize()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
