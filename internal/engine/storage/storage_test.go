package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "grp", Type: types.Int32},
		types.Column{Name: "val", Type: types.Float32},
		types.Column{Name: "tag", Type: types.String},
	)
}

func loadRows(t *testing.T, tbl *Table, n int, rng *rand.Rand) [][]types.Datum {
	t.Helper()
	app := tbl.NewAppender()
	rows := make([][]types.Datum, 0, n)
	for i := 0; i < n; i++ {
		row := []types.Datum{
			types.Int64Datum(int64(i)),
			types.Int32Datum(int32(i % 7)),
			types.Float32Datum(rng.Float32()),
			types.StringDatum([]string{"a", "b", "c"}[i%3]),
		}
		rows = append(rows, row)
		if err := app.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	app.Close()
	return rows
}

func scanAll(t *testing.T, tbl *Table, proj []int, filters []RangeFilter) *vector.Batch {
	t.Helper()
	var out *vector.Batch
	for p := 0; p < tbl.Partitions(); p++ {
		sc, err := tbl.NewScanner(p, proj, filters)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			out = vector.NewBatch(sc.Schema(), vector.Size)
		}
		buf := vector.NewBatch(sc.Schema(), vector.Size)
		for sc.Next(buf) {
			out.AppendBatch(buf)
		}
	}
	return out
}

func TestRoundTripSinglePartition(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{Partitions: 1})
	rng := rand.New(rand.NewSource(1))
	rows := loadRows(t, tbl, 20000, rng) // crosses block boundaries
	got := scanAll(t, tbl, nil, nil)
	if got.Len() != len(rows) {
		t.Fatalf("scanned %d rows, want %d", got.Len(), len(rows))
	}
	for i, want := range rows {
		for c, d := range want {
			if got.Vecs[c].Datum(i).Compare(d) != 0 {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got.Vecs[c].Datum(i), d)
			}
		}
	}
}

func TestRoundTripPartitioned(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{Partitions: 12})
	rng := rand.New(rand.NewSource(2))
	rows := loadRows(t, tbl, 5000, rng)
	got := scanAll(t, tbl, nil, nil)
	if got.Len() != len(rows) {
		t.Fatalf("scanned %d rows, want %d", got.Len(), len(rows))
	}
	// Round-robin balance: partitions differ by at most one row.
	min, max := tbl.PartitionRows(0), tbl.PartitionRows(0)
	for p := 1; p < 12; p++ {
		n := tbl.PartitionRows(p)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("unbalanced partitions: min %d max %d", min, max)
	}
	// All ids present exactly once.
	seen := map[int64]bool{}
	for i := 0; i < got.Len(); i++ {
		id := got.Vecs[0].Int64s()[i]
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestHashPartitioning(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{Partitions: 4, Scheme: HashKey, Key: 1})
	rng := rand.New(rand.NewSource(3))
	loadRows(t, tbl, 1000, rng)
	// Same grp value must land in the same partition: scan each partition
	// and verify group disjointness.
	owner := map[int32]int{}
	for p := 0; p < 4; p++ {
		sc, _ := tbl.NewScanner(p, []int{1}, nil)
		buf := vector.NewBatch(sc.Schema(), vector.Size)
		for sc.Next(buf) {
			for i := 0; i < buf.Len(); i++ {
				g := buf.Vecs[0].Int32s()[i]
				if prev, ok := owner[g]; ok && prev != p {
					t.Fatalf("group %d found in partitions %d and %d", g, prev, p)
				}
				owner[g] = p
			}
		}
	}
}

func TestProjection(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{})
	rng := rand.New(rand.NewSource(4))
	loadRows(t, tbl, 100, rng)
	got := scanAll(t, tbl, []int{2, 0}, nil)
	if got.Schema.Len() != 2 {
		t.Fatalf("projected schema has %d cols", got.Schema.Len())
	}
	if got.Schema.Col(0).Name != "val" || got.Schema.Col(1).Name != "id" {
		t.Fatalf("projection order wrong: %s", got.Schema)
	}
}

func TestZoneMapPruning(t *testing.T) {
	// Sorted int column: blocks have disjoint ranges, so a narrow range
	// filter must prune most blocks.
	schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	tbl := NewTable("t", schema, Options{Partitions: 1})
	app := tbl.NewAppender()
	const n = 10 * BlockSize
	for i := 0; i < n; i++ {
		if err := app.AppendRow(types.Int64Datum(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	app.Close()

	lo, hi := types.Int64Datum(3*BlockSize+5), types.Int64Datum(3*BlockSize+10)
	sc, err := tbl.NewScanner(0, nil, []RangeFilter{{Col: 0, Lo: &lo, Hi: &hi}})
	if err != nil {
		t.Fatal(err)
	}
	buf := vector.NewBatch(sc.Schema(), vector.Size)
	rows := 0
	for sc.Next(buf) {
		rows += buf.Len()
		for i := 0; i < buf.Len(); i++ {
			v := buf.Vecs[0].Int64s()[i]
			// Pruning is conservative: surviving blocks may contain rows
			// outside the range, but the target rows must all be there.
			_ = v
		}
	}
	if sc.PrunedBlocks != 9 {
		t.Errorf("pruned %d blocks, want 9", sc.PrunedBlocks)
	}
	if rows != BlockSize {
		t.Errorf("scanned %d rows, want one block (%d)", rows, BlockSize)
	}
}

func TestZoneMapPruningNeverDropsMatches(t *testing.T) {
	err := quick.Check(func(seed int64, loRaw, hiRaw int16) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := types.NewSchema(types.Column{Name: "x", Type: types.Int32})
		tbl := NewTable("t", schema, Options{Partitions: 1})
		app := tbl.NewAppender()
		vals := make([]int32, 3000)
		for i := range vals {
			vals[i] = int32(rng.Intn(1000))
			_ = app.AppendRow(types.Int32Datum(vals[i]))
		}
		app.Close()
		lo64, hi64 := int64(loRaw%1000), int64(hiRaw%1000)
		if lo64 > hi64 {
			lo64, hi64 = hi64, lo64
		}
		lo, hi := types.Int32Datum(int32(lo64)), types.Int32Datum(int32(hi64))
		sc, err := tbl.NewScanner(0, nil, []RangeFilter{{Col: 0, Lo: &lo, Hi: &hi}})
		if err != nil {
			return false
		}
		buf := vector.NewBatch(sc.Schema(), vector.Size)
		got := 0
		for sc.Next(buf) {
			for i := 0; i < buf.Len(); i++ {
				v := int64(buf.Vecs[0].Int32s()[i])
				if v >= lo64 && v <= hi64 {
					got++
				}
			}
		}
		want := 0
		for _, v := range vals {
			if int64(v) >= lo64 && int64(v) <= hi64 {
				want++
			}
		}
		return got == want
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestCompressionEffective(t *testing.T) {
	// A constant column and an RLE-friendly column must compress far below
	// raw size; this is the property Sec. 4.1 relies on for the sparse
	// weight columns of the model table.
	schema := types.NewSchema(
		types.Column{Name: "zero", Type: types.Float32},
		types.Column{Name: "layer", Type: types.Int32},
	)
	tbl := NewTable("t", schema, Options{Partitions: 1})
	app := tbl.NewAppender()
	const n = 4 * BlockSize
	for i := 0; i < n; i++ {
		_ = app.AppendRow(types.Float32Datum(0), types.Int32Datum(int32(i/BlockSize)))
	}
	app.Close()
	raw := int64(n) * 8
	if got := tbl.MemSize(); got > raw/20 {
		t.Errorf("compressed size %d, raw %d: compression ineffective", got, raw)
	}
	// And it still round-trips.
	got := scanAll(t, tbl, nil, nil)
	if got.Len() != n {
		t.Fatalf("scanned %d rows, want %d", got.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got.Vecs[1].Int32s()[i] != int32(i/BlockSize) {
			t.Fatalf("row %d: rle value corrupted", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		rng := rand.New(rand.NewSource(seed))
		schema := types.NewSchema(
			types.Column{Name: "a", Type: types.Int32},
			types.Column{Name: "b", Type: types.Float64},
		)
		tbl := NewTable("t", schema, Options{Partitions: 3})
		app := tbl.NewAppender()
		sumA, sumB := int64(0), 0.0
		for i := 0; i < n; i++ {
			a := int32(rng.Intn(50)) // small domain encourages RLE paths
			b := float64(rng.Intn(10))
			sumA += int64(a)
			sumB += b
			_ = app.AppendRow(types.Int32Datum(a), types.Float64Datum(b))
		}
		app.Close()
		gotA, gotB := int64(0), 0.0
		for p := 0; p < 3; p++ {
			sc, _ := tbl.NewScanner(p, nil, nil)
			buf := vector.NewBatch(sc.Schema(), vector.Size)
			for sc.Next(buf) {
				for i := 0; i < buf.Len(); i++ {
					gotA += int64(buf.Vecs[0].Int32s()[i])
					gotB += buf.Vecs[1].Float64s()[i]
				}
			}
		}
		return gotA == sumA && gotB == sumB && tbl.RowCount() == n
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestSortedByDeclaration(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{})
	if tbl.SortedBy() != -1 {
		t.Errorf("fresh table SortedBy = %d, want -1", tbl.SortedBy())
	}
	tbl.SetSortedBy(0)
	if tbl.SortedBy() != 0 {
		t.Errorf("SortedBy = %d, want 0", tbl.SortedBy())
	}
}

func TestAppendRowArityError(t *testing.T) {
	tbl := NewTable("t", testSchema(), Options{})
	app := tbl.NewAppender()
	if err := app.AppendRow(types.Int64Datum(1)); err == nil {
		t.Error("expected arity error")
	}
}

func TestNullRoundTrip(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "v", Type: types.Float64},
		types.Column{Name: "s", Type: types.String},
	)
	tbl := NewTable("t", schema, Options{Partitions: 2})
	app := tbl.NewAppender()
	const n = 2*BlockSize + 100
	for i := 0; i < n; i++ {
		var v, s types.Datum
		if i%3 == 0 {
			v = types.NullDatum(types.Float64)
		} else {
			v = types.Float64Datum(float64(i))
		}
		if i%5 == 0 {
			s = types.NullDatum(types.String)
		} else {
			s = types.StringDatum("x")
		}
		if err := app.AppendRow(v, s); err != nil {
			t.Fatal(err)
		}
	}
	app.Close()
	got := scanAll(t, tbl, nil, nil)
	if got.Len() != n {
		t.Fatalf("scanned %d rows", got.Len())
	}
	nullV, nullS := 0, 0
	for i := 0; i < got.Len(); i++ {
		if got.Vecs[0].NullAt(i) {
			nullV++
		} else if got.Vecs[0].Float64s()[i] == 0 && i != 0 {
			// non-null zeros only occur at i==0 in this dataset
			t.Fatalf("row %d lost its value", i)
		}
		if got.Vecs[1].NullAt(i) {
			nullS++
		}
	}
	wantV := (n + 2) / 3
	wantS := (n + 4) / 5
	if nullV != wantV || nullS != wantS {
		t.Errorf("null counts: v=%d (want %d), s=%d (want %d)", nullV, wantV, nullS, wantS)
	}
}
