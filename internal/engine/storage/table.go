package storage

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// PartitionScheme controls how an Appender routes rows to partitions.
type PartitionScheme uint8

const (
	// RoundRobin distributes rows evenly; with a unique identifier column
	// this matches the paper's "unique partition key leads to balanced
	// partitioning" setup.
	RoundRobin PartitionScheme = iota
	// HashKey routes by the hash of a key column.
	HashKey
)

// Options configure table creation.
type Options struct {
	// Partitions is the number of partitions; the paper's experiments use
	// 12. Defaults to 1.
	Partitions int
	// Scheme selects partition routing for appends.
	Scheme PartitionScheme
	// Key is the column ordinal used by HashKey.
	Key int
	// Sorted declares that rows arrive sorted by column SortedBy within
	// each partition. The planner exploits this for the order-based
	// (pipelined) aggregation of Sec. 4.4.
	Sorted   bool
	SortedBy int
	// Unique declares column UniqueKey a unique row identifier (the ID
	// column of Sec. 4.2). Grouping on it is partition-aligned, which lets
	// the planner parallelize the generated ML queries without
	// repartitioning (Sec. 4.4).
	Unique    bool
	UniqueKey int
}

// Table is a partitioned, compressed column-store table. Loads go through
// an Appender; scans are concurrent and see a consistent snapshot of the
// blocks present when the scanner was created (blocks are immutable once
// built, and mutations only append or atomically swap block lists), so DML
// and queries never race.
//
// Every mutation — append, partition replacement — bumps a monotonic
// version counter. The engine keys its cross-query model-artifact cache on
// this version: a model table whose version is unchanged serves cached
// weight matrices, and any write invalidates them implicitly.
type Table struct {
	Name   string
	Schema *types.Schema
	opts   Options

	mu      sync.RWMutex // guards parts contents (chunks, staging, rows)
	parts   []*partition
	version atomic.Uint64
}

type partition struct {
	rows   int
	chunks [][]*block // [column][block]
	// staging buffers rows until a full block can be compressed.
	staging []*vector.Vector
}

// NewTable creates an empty table.
func NewTable(name string, schema *types.Schema, opts Options) *Table {
	if opts.Partitions <= 0 {
		opts.Partitions = 1
	}
	t := &Table{Name: name, Schema: schema, opts: opts}
	for i := 0; i < opts.Partitions; i++ {
		p := &partition{chunks: make([][]*block, schema.Len())}
		p.staging = make([]*vector.Vector, schema.Len())
		for c := 0; c < schema.Len(); c++ {
			p.staging[c] = vector.New(schema.Col(c).Type, 0)
		}
		t.parts = append(t.parts, p)
	}
	return t
}

// Version returns the table's mutation counter. It starts at 0 for an empty
// table and increases on every append or partition replacement; equal
// versions imply identical contents (the converse need not hold).
func (t *Table) Version() uint64 { return t.version.Load() }

// SetSortedBy declares the column rows are sorted by within partitions.
func (t *Table) SetSortedBy(col int) { t.opts.Sorted, t.opts.SortedBy = true, col }

// SetUniqueKey declares the table's unique row-identifier column.
func (t *Table) SetUniqueKey(col int) { t.opts.Unique, t.opts.UniqueKey = true, col }

// UniqueKey returns the declared unique key column, or -1.
func (t *Table) UniqueKey() int {
	if !t.opts.Unique {
		return -1
	}
	return t.opts.UniqueKey
}

// SortedBy returns the declared sort column, or -1 when no order is known.
func (t *Table) SortedBy() int {
	if !t.opts.Sorted {
		return -1
	}
	return t.opts.SortedBy
}

// Partitions returns the partition count.
func (t *Table) Partitions() int { return len(t.parts) }

// RowCount returns the total number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, p := range t.parts {
		n += p.rows
	}
	return n
}

// PartitionRows returns the number of rows in partition i.
func (t *Table) PartitionRows(i int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parts[i].rows
}

// MemSize returns the approximate compressed footprint in bytes.
func (t *Table) MemSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s int64
	for _, p := range t.parts {
		for _, chunk := range p.chunks {
			for _, b := range chunk {
				s += b.memSize()
			}
		}
		for _, v := range p.staging {
			if v != nil {
				s += v.MemSize()
			}
		}
	}
	return s
}

// Appender loads rows into a table. It is not safe for concurrent use; load
// once, then scan concurrently.
type Appender struct {
	t    *Table
	next int // round-robin cursor
}

// NewAppender returns an appender for the table.
func (t *Table) NewAppender() *Appender { return &Appender{t: t} }

// AppendRow routes one row to its partition.
func (a *Appender) AppendRow(row ...types.Datum) error {
	if len(row) != a.t.Schema.Len() {
		return fmt.Errorf("storage: row has %d values, table %s has %d columns", len(row), a.t.Name, a.t.Schema.Len())
	}
	var pi int
	switch a.t.opts.Scheme {
	case HashKey:
		h := fnv.New32a()
		fmt.Fprint(h, row[a.t.opts.Key].String())
		pi = int(h.Sum32()) % len(a.t.parts)
	default:
		pi = a.next
		a.next = (a.next + 1) % len(a.t.parts)
	}
	return a.appendTo(pi, row)
}

// AppendRowToPartition places a row into an explicit partition, used by
// loaders that pre-partition (e.g. contiguous ID ranges to keep per-partition
// sort orders).
func (a *Appender) AppendRowToPartition(pi int, row ...types.Datum) error {
	if pi < 0 || pi >= len(a.t.parts) {
		return fmt.Errorf("storage: partition %d out of range", pi)
	}
	return a.appendTo(pi, row)
}

func (a *Appender) appendTo(pi int, row []types.Datum) error {
	a.t.mu.Lock()
	p := a.t.parts[pi]
	for c, d := range row {
		p.staging[c].AppendDatum(d)
	}
	p.rows++
	if p.staging[0].Len() >= BlockSize {
		p.flush(a.t.Schema.Len())
	}
	a.t.mu.Unlock()
	a.t.version.Add(1)
	return nil
}

// AppendBatch appends all rows of a batch.
func (a *Appender) AppendBatch(b *vector.Batch) error {
	for i := 0; i < b.Len(); i++ {
		if err := a.AppendRow(b.Row(i)...); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes remaining staged rows; the table is then ready for scans.
func (a *Appender) Close() {
	a.t.mu.Lock()
	defer a.t.mu.Unlock()
	for _, p := range a.t.parts {
		if p.staging[0] != nil && p.staging[0].Len() > 0 {
			p.flush(a.t.Schema.Len())
		}
	}
}

func (p *partition) flush(ncols int) {
	n := p.staging[0].Len()
	for lo := 0; lo < n; lo += BlockSize {
		hi := lo + BlockSize
		if hi > n {
			hi = n
		}
		for c := 0; c < ncols; c++ {
			p.chunks[c] = append(p.chunks[c], buildBlock(p.staging[c], lo, hi))
		}
	}
	// Reallocate rather than reset: staged capacity would otherwise linger
	// as uncompressed memory next to the compressed blocks.
	for c := 0; c < ncols; c++ {
		p.staging[c] = vector.New(p.staging[c].Type(), 0)
	}
}

// RangeFilter is a conservative zone-map predicate: blocks whose [min, max]
// range for column Col cannot intersect [Lo, Hi] are skipped entirely. This
// implements the block pruning of Sec. 4.4 (the layer filter on the model
// table). Nil bounds are unbounded.
type RangeFilter struct {
	Col    int
	Lo, Hi *types.Datum
}

// Scanner iterates one partition of a table, producing batches of at most
// vector.Size rows. Blocks failing any RangeFilter's zone-map check are
// pruned without decompression.
//
// A scanner reads the snapshot of compressed blocks present at creation:
// blocks are immutable, so concurrent appends or partition replacements
// neither tear rows nor surface to an in-flight scan.
type Scanner struct {
	t       *Table
	chunks  [][]*block // [column][block] snapshot
	proj    []int
	filters []RangeFilter
	schema  *types.Schema

	blockIdx int
	rowInBlk int
	// PrunedBlocks counts zone-map-skipped blocks, exposed for tests and
	// the ablation benchmarks.
	PrunedBlocks int
	// ScannedBytes accumulates the compressed footprint of every projected
	// block actually decoded (pruned blocks cost nothing), feeding the
	// flight recorder's bytes_scanned accounting.
	ScannedBytes int64
}

// NewScanner creates a scanner over partition pi projecting the given
// columns (nil = all).
func (t *Table) NewScanner(pi int, proj []int, filters []RangeFilter) (*Scanner, error) {
	if pi < 0 || pi >= len(t.parts) {
		return nil, fmt.Errorf("storage: partition %d out of range for table %s", pi, t.Name)
	}
	if proj == nil {
		proj = make([]int, t.Schema.Len())
		for i := range proj {
			proj[i] = i
		}
	}
	cols := make([]types.Column, len(proj))
	for i, c := range proj {
		if c < 0 || c >= t.Schema.Len() {
			return nil, fmt.Errorf("storage: projected column %d out of range for table %s", c, t.Name)
		}
		cols[i] = t.Schema.Col(c)
	}
	for _, f := range filters {
		if f.Col < 0 || f.Col >= t.Schema.Len() {
			return nil, fmt.Errorf("storage: filter column %d out of range for table %s", f.Col, t.Name)
		}
	}
	// Snapshot the partition's block lists under the read lock. Copying the
	// slice headers is enough: blocks are immutable, concurrent flushes only
	// append past the snapshot length, and ReplacePartition swaps whole
	// lists without touching the old ones.
	t.mu.RLock()
	p := t.parts[pi]
	chunks := make([][]*block, len(p.chunks))
	for c := range p.chunks {
		chunks[c] = p.chunks[c][:len(p.chunks[c]):len(p.chunks[c])]
	}
	t.mu.RUnlock()
	return &Scanner{t: t, chunks: chunks, proj: proj, filters: filters, schema: types.NewSchema(cols...)}, nil
}

// Schema returns the scanner's output schema (the projection).
func (s *Scanner) Schema() *types.Schema { return s.schema }

// Next fills dst with the next batch and reports whether any rows were
// produced. dst must have been created with the scanner's schema.
func (s *Scanner) Next(dst *vector.Batch) bool {
	dst.Reset()
	for dst.Len() == 0 {
		if len(s.chunks) == 0 || len(s.chunks[0]) == 0 {
			return false
		}
		if s.blockIdx >= len(s.chunks[0]) {
			return false
		}
		if s.rowInBlk == 0 && s.pruned(s.blockIdx) {
			s.PrunedBlocks++
			s.blockIdx++
			continue
		}
		blkLen := s.chunks[0][s.blockIdx].n
		if s.rowInBlk == 0 {
			for _, c := range s.proj {
				s.ScannedBytes += s.chunks[c][s.blockIdx].memSize()
			}
		}
		take := blkLen - s.rowInBlk
		if take > vector.Size {
			take = vector.Size
		}
		for vi, c := range s.proj {
			s.chunks[c][s.blockIdx].decodeInto(dst.Vecs[vi], s.rowInBlk, s.rowInBlk+take)
		}
		dst.SetLen(take)
		s.rowInBlk += take
		if s.rowInBlk >= blkLen {
			s.rowInBlk = 0
			s.blockIdx++
		}
	}
	return true
}

func (s *Scanner) pruned(blockIdx int) bool {
	for _, f := range s.filters {
		if !s.chunks[f.Col][blockIdx].overlaps(f.Lo, f.Hi) {
			return true
		}
	}
	return false
}

// ReplacePartition atomically swaps the contents of partition pi for the
// given rows and bumps the table version. It is the storage primitive under
// DELETE and UPDATE: the executor scans a snapshot, computes the surviving
// (possibly modified) rows, and swaps them in. In-flight scanners keep
// reading the snapshot they opened.
func (t *Table) ReplacePartition(pi int, rows [][]types.Datum) error {
	t.mu.RLock()
	inRange := pi >= 0 && pi < len(t.parts)
	t.mu.RUnlock()
	if !inRange {
		return fmt.Errorf("storage: partition %d out of range for table %s", pi, t.Name)
	}
	// Build the replacement partition outside the lock.
	ncols := t.Schema.Len()
	p := &partition{chunks: make([][]*block, ncols)}
	p.staging = make([]*vector.Vector, ncols)
	for c := 0; c < ncols; c++ {
		p.staging[c] = vector.New(t.Schema.Col(c).Type, 0)
	}
	for _, row := range rows {
		if len(row) != ncols {
			return fmt.Errorf("storage: replacement row has %d values, table %s has %d columns", len(row), t.Name, ncols)
		}
		for c, d := range row {
			p.staging[c].AppendDatum(d)
		}
		p.rows++
		if p.staging[0].Len() >= BlockSize {
			p.flush(ncols)
		}
	}
	if p.staging[0].Len() > 0 {
		p.flush(ncols)
	}
	t.mu.Lock()
	t.parts[pi] = p
	t.mu.Unlock()
	t.version.Add(1)
	return nil
}
