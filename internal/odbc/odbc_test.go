package odbc

import (
	"testing"

	"indbml/internal/engine/db"
	"indbml/internal/engine/types"
)

func setup(t *testing.T) *db.Database {
	t.Helper()
	d := db.Open(db.Options{})
	if err := d.Exec("CREATE TABLE t (id BIGINT, v REAL, w DOUBLE, n INTEGER, s VARCHAR, b BOOLEAN)"); err != nil {
		t.Fatal(err)
	}
	if err := d.Exec("INSERT INTO t VALUES (1, 1.5, 2.5, 7, 'hi', TRUE), (2, -0.5, 0.25, -3, 'yo', FALSE)"); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQueryRoundTrip(t *testing.T) {
	d := setup(t)
	rows, err := Query(d, "SELECT id, v, w, n, s, b FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	cols := rows.Columns()
	if len(cols) != 6 || cols[0].Name != "id" || cols[0].Type != types.Int64 || cols[4].Type != types.String {
		t.Fatalf("schema wrong: %+v", cols)
	}
	r1 := rows.Next()
	if r1 == nil {
		t.Fatal("no first row")
	}
	if r1[0].(int64) != 1 || r1[1].(float32) != 1.5 || r1[2].(float64) != 2.5 ||
		r1[3].(int32) != 7 || r1[4].(string) != "hi" || r1[5].(bool) != true {
		t.Fatalf("row 1 wrong: %v", r1)
	}
	r2 := rows.Next()
	if r2 == nil || r2[0].(int64) != 2 || r2[5].(bool) != false {
		t.Fatalf("row 2 wrong: %v", r2)
	}
	if rows.Next() != nil {
		t.Error("expected end of stream")
	}
	if rows.Err() != nil {
		t.Errorf("unexpected error: %v", rows.Err())
	}
}

func TestQueryManyRowsCrossChunks(t *testing.T) {
	d := db.Open(db.Options{DefaultPartitions: 3})
	if err := d.Exec("CREATE TABLE big (id BIGINT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i += 3 {
		stmt := ""
		for j := 0; j < 3; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += "(" + itoa(i+j) + ", 0.5)"
		}
		if err := d.Exec("INSERT INTO big VALUES " + stmt); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := Query(d, "SELECT id, v FROM big")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for {
		row := rows.Next()
		if row == nil {
			break
		}
		id := row[0].(int64)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if len(seen) != 3000 {
		t.Errorf("fetched %d rows, want 3000", len(seen))
	}
}

func TestQueryNulls(t *testing.T) {
	d := setup(t)
	rows, err := Query(d, "SELECT SUM(v) AS s FROM t WHERE v > 100")
	if err != nil {
		t.Fatal(err)
	}
	row := rows.Next()
	if row == nil {
		t.Fatal("expected one row")
	}
	if row[0] != nil {
		t.Errorf("SUM over empty set should arrive as nil, got %v", row[0])
	}
}

func TestQueryErrorPropagation(t *testing.T) {
	d := setup(t)
	if _, err := Query(d, "SELECT nope FROM t"); err == nil {
		t.Error("planning error should surface at Query")
	}
	if _, err := Query(d, "SELECT FROM"); err == nil {
		t.Error("parse error should surface at Query")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSessionSequentialQueries(t *testing.T) {
	d := setup(t)
	s := Connect(d)
	defer s.Close()

	// Several statements over the one connection, in lock step.
	for i := 0; i < 3; i++ {
		rows, err := s.Query("SELECT id, s FROM t ORDER BY id")
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		n := 0
		for rows.Next() != nil {
			n++
		}
		if rows.Err() != nil || n != 2 {
			t.Fatalf("query %d: rows = %d, err = %v", i, n, rows.Err())
		}
	}

	// An engine error is reported in-band and leaves the session usable.
	if _, err := s.Query("SELECT nope FROM t"); err == nil {
		t.Fatal("planning error should surface at Query")
	}
	rows, err := s.Query("SELECT COUNT(*) AS n FROM t")
	if err != nil {
		t.Fatalf("session dead after in-band error: %v", err)
	}
	row := rows.Next()
	if row == nil || row[0].(int64) != 2 {
		t.Fatalf("count after error = %v", row)
	}
}

func TestSessionAbandonedCursorIsDrained(t *testing.T) {
	d := db.Open(db.Options{DefaultPartitions: 2})
	if err := d.Exec("CREATE TABLE big (id BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i += 4 {
		if err := d.Exec("INSERT INTO big VALUES (" + itoa(i) + "), (" + itoa(i+1) + "), (" + itoa(i+2) + "), (" + itoa(i+3) + ")"); err != nil {
			t.Fatal(err)
		}
	}
	s := Connect(d)
	defer s.Close()

	// Read only one row of a multi-chunk result, then issue the next
	// statement: the session must drain the rest to stay framed.
	rows, err := s.Query("SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Next() == nil {
		t.Fatal("expected a first row")
	}
	rows2, err := s.Query("SELECT COUNT(*) AS n FROM big")
	if err != nil {
		t.Fatal(err)
	}
	row := rows2.Next()
	if row == nil || row[0].(int64) != 2000 {
		t.Fatalf("count after abandoned cursor = %v", row)
	}
}
