// Package odbc simulates the ODBC data path of the paper's TF(Python)
// baseline: query results leave the database engine as a row-oriented byte
// stream — serialized value by value with type tags, chunked through a real
// in-memory pipe — and are parsed back into boxed values on the client
// ("Python") side. Every byte is produced and consumed for real, so the
// transfer overhead the paper identifies as TF(Python)'s dominant cost
// (Sec. 6.2.1) is measured, not modeled.
//
// The byte-level encoding lives in package wire and is shared with the
// network SQL server (package server), so baseline and serving
// measurements use the identical row format.
package odbc

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"indbml/internal/engine/db"
	"indbml/internal/wire"
)

// Server drains query results from an engine into the wire protocol.
type Server struct {
	DB *db.Database
}

// Serve executes one query and streams its result batches to w. Errors are
// reported in-band so the client always sees a terminated stream.
func (s *Server) Serve(query string, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	return s.serveOne(query, bw)
}

func (s *Server) serveOne(query string, bw *bufio.Writer) error {
	op, err := s.DB.QueryOp(query)
	if err != nil {
		wire.WriteError(bw, wire.CodeError, err.Error())
		return bw.Flush()
	}
	_, err = wire.StreamOperator(bw, op)
	// StreamOperator leaves the final frames buffered; deliver them here so
	// the one-shot Serve path needs no caller-side flush.
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// ServeConn handles a full connection: statement frames arrive one after
// another and each is answered with a result stream, so a client can issue
// multiple sequential queries over one pipe (the successor to the one-shot
// Serve). It returns when the client closes the connection.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		query, _, _, _, err := wire.ReadStmt(br)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		// Engine errors are reported in-band and leave the connection
		// usable; the writer's sticky error distinguishes a dead transport.
		s.serveOne(query, bw)
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// Column describes one result column on the client side.
type Column = wire.Column

// Rows is the client-side cursor. Values are decoded into boxed `any`
// slices — the equivalent of Python objects materialized per fetched value.
type Rows struct {
	cur *wire.Cursor
}

// Columns returns the result schema.
func (rs *Rows) Columns() []Column { return rs.cur.Columns() }

// Err returns the terminal error, if any.
func (rs *Rows) Err() error { return rs.cur.Err() }

// Next returns the next row as boxed values, or nil at end of stream.
func (rs *Rows) Next() []any { return rs.cur.Next() }

// QueryID returns the server's flight-recorder ID for this statement,
// available once the stream has finished cleanly (0 before that, or when
// the recorder is disabled). It keys into system.queries.
func (rs *Rows) QueryID() uint64 { return rs.cur.QueryID() }

// Query runs a query against the database over an in-memory network pipe
// and returns a client-side cursor. A server goroutine streams the result;
// the returned Rows reads from the connection like a remote client.
func Query(d *db.Database, query string) (*Rows, error) {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		(&Server{DB: d}).Serve(query, server)
	}()
	r := bufio.NewReaderSize(client, 64<<10)
	cur, err := wire.ReadResultHeader(r)
	if err != nil {
		if se, ok := err.(*wire.ServerError); ok {
			return nil, fmt.Errorf("odbc: server: %s", se.Msg)
		}
		return nil, fmt.Errorf("odbc: reading schema: %w", err)
	}
	return &Rows{cur: cur}, nil
}

// Session is a client-side handle over one multi-query connection served by
// ServeConn: it sends statement frames and reads result streams in lock
// step, mimicking an ODBC connection that stays open between queries.
type Session struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	bw   *bufio.Writer
	cur  *Rows
}

// Connect starts a ServeConn goroutine over an in-memory pipe and returns
// the client half.
func Connect(d *db.Database) *Session {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		(&Server{DB: d}).ServeConn(server)
	}()
	return NewSession(client)
}

// NewSession wraps an established connection to a ServeConn peer.
func NewSession(conn io.ReadWriteCloser) *Session {
	return &Session{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Query issues one statement on the session and returns its cursor. Any
// unfinished previous cursor is drained first, keeping the stream framed.
func (s *Session) Query(query string) (*Rows, error) {
	if s.cur != nil {
		s.cur.cur.Drain()
		s.cur = nil
	}
	wire.WriteStmt(s.bw, query, 0, 0, 0)
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	cur, err := wire.ReadResultHeader(s.br)
	if err != nil {
		if se, ok := err.(*wire.ServerError); ok {
			return nil, fmt.Errorf("odbc: server: %s", se.Msg)
		}
		return nil, err
	}
	s.cur = &Rows{cur: cur}
	return s.cur, nil
}

// Close tears down the connection.
func (s *Session) Close() error { return s.conn.Close() }
