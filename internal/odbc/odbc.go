// Package odbc simulates the ODBC data path of the paper's TF(Python)
// baseline: query results leave the database engine as a row-oriented byte
// stream — serialized value by value with type tags, chunked through a real
// in-memory pipe — and are parsed back into boxed values on the client
// ("Python") side. Every byte is produced and consumed for real, so the
// transfer overhead the paper identifies as TF(Python)'s dominant cost
// (Sec. 6.2.1) is measured, not modeled.
//
// The protocol is deliberately row-major and tagged, like ODBC's wire
// formats: an analytical engine must pivot its columns into rows to serve
// it, and the client pays per-value dispatch to decode.
package odbc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"

	"indbml/internal/engine/db"
	"indbml/internal/engine/types"
	"indbml/internal/engine/vector"
)

// Wire-format value tags. Non-null values travel as length-prefixed text —
// the representation ODBC drivers commonly use (and the reason fetching
// large numeric results through ODBC costs so much: every float is
// formatted by the server and parsed by the client).
const (
	tagNull = 0
	tagText = 1
)

// Message framing.
const (
	msgSchema = 0xA1
	msgRows   = 0xA2
	msgDone   = 0xA3
	msgError  = 0xAE
)

// chunkRows is how many rows are framed per message; small enough to keep
// the pipe streaming, large enough to amortize framing.
const chunkRows = 512

// Server drains query results from an engine into the wire protocol.
type Server struct {
	DB *db.Database
}

// Serve executes the query and streams its result batches to w. Errors are
// reported in-band so the client always sees a terminated stream.
func (s *Server) Serve(query string, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	op, err := s.DB.QueryOp(query)
	if err != nil {
		writeError(bw, err)
		return bw.Flush()
	}
	if err := op.Open(); err != nil {
		writeError(bw, err)
		return bw.Flush()
	}
	defer op.Close()

	schema := op.Schema()
	writeSchema(bw, schema)
	// Rows are framed into count-prefixed chunks: [msgRows][n]([len][row])×n.
	chunk := make([][]byte, 0, chunkRows)
	flushChunk := func() {
		if len(chunk) == 0 {
			return
		}
		bw.WriteByte(msgRows)
		writeUvarint(bw, uint64(len(chunk)))
		for _, row := range chunk {
			writeUvarint(bw, uint64(len(row)))
			bw.Write(row)
		}
		chunk = chunk[:0]
	}
	for {
		b, err := op.Next()
		if err != nil {
			writeError(bw, err)
			return bw.Flush()
		}
		if b == nil {
			break
		}
		for r := 0; r < b.Len(); r++ {
			chunk = append(chunk, encodeRow(nil, b, r))
			if len(chunk) >= chunkRows {
				flushChunk()
			}
		}
	}
	flushChunk()
	bw.WriteByte(msgDone)
	return bw.Flush()
}

func writeError(w *bufio.Writer, err error) {
	w.WriteByte(msgError)
	msg := err.Error()
	writeUvarint(w, uint64(len(msg)))
	w.WriteString(msg)
}

func writeSchema(w *bufio.Writer, schema *types.Schema) {
	w.WriteByte(msgSchema)
	writeUvarint(w, uint64(schema.Len()))
	for i := 0; i < schema.Len(); i++ {
		c := schema.Col(i)
		writeUvarint(w, uint64(len(c.Name)))
		w.WriteString(c.Name)
		w.WriteByte(byte(c.Type))
	}
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

// encodeRow pivots one row out of the columnar batch, formatting every
// value as text (the server-side half of the ODBC conversion cost).
func encodeRow(dst []byte, b *vector.Batch, r int) []byte {
	var scratch [32]byte
	for _, v := range b.Vecs {
		if v.NullAt(r) {
			dst = append(dst, tagNull)
			continue
		}
		dst = append(dst, tagText)
		var text []byte
		switch v.Type() {
		case types.Bool:
			if v.Bools()[r] {
				text = append(scratch[:0], "true"...)
			} else {
				text = append(scratch[:0], "false"...)
			}
		case types.Int32:
			text = strconv.AppendInt(scratch[:0], int64(v.Int32s()[r]), 10)
		case types.Int64:
			text = strconv.AppendInt(scratch[:0], v.Int64s()[r], 10)
		case types.Float32:
			text = strconv.AppendFloat(scratch[:0], float64(v.Float32s()[r]), 'g', -1, 32)
		case types.Float64:
			text = strconv.AppendFloat(scratch[:0], v.Float64s()[r], 'g', -1, 64)
		case types.String:
			text = []byte(v.Strings()[r])
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(text)))
		dst = append(dst, text...)
	}
	return dst
}

// Column describes one result column on the client side.
type Column struct {
	Name string
	Type types.T
}

// Rows is the client-side cursor. Values are decoded into boxed `any`
// slices — the equivalent of Python objects materialized per fetched value.
type Rows struct {
	r       *bufio.Reader
	cols    []Column
	err     error
	done    bool
	pending uint64 // rows left in the current chunk
	rowBuf  []byte
}

// Columns returns the result schema.
func (rs *Rows) Columns() []Column { return rs.cols }

// Err returns the terminal error, if any.
func (rs *Rows) Err() error { return rs.err }

// Next returns the next row as boxed values, or nil at end of stream.
func (rs *Rows) Next() []any {
	if rs.done || rs.err != nil {
		return nil
	}
	for {
		if rs.pending == 0 {
			tag, err := rs.r.ReadByte()
			if err != nil {
				rs.fail(err)
				return nil
			}
			switch tag {
			case msgRows:
				n, err := binary.ReadUvarint(rs.r)
				if err != nil {
					rs.fail(err)
					return nil
				}
				rs.pending = n
			case msgDone:
				rs.done = true
				return nil
			case msgError:
				n, _ := binary.ReadUvarint(rs.r)
				buf := make([]byte, n)
				io.ReadFull(rs.r, buf)
				rs.fail(fmt.Errorf("odbc: server: %s", buf))
				return nil
			default:
				rs.fail(fmt.Errorf("odbc: unexpected message tag 0x%x", tag))
				return nil
			}
			continue
		}
		rs.pending--
		n, err := binary.ReadUvarint(rs.r)
		if err != nil {
			rs.fail(err)
			return nil
		}
		if cap(rs.rowBuf) < int(n) {
			rs.rowBuf = make([]byte, n)
		}
		buf := rs.rowBuf[:n]
		if _, err := io.ReadFull(rs.r, buf); err != nil {
			rs.fail(err)
			return nil
		}
		row, err := decodeRow(buf, rs.cols)
		if err != nil {
			rs.fail(err)
			return nil
		}
		return row
	}
}

func (rs *Rows) fail(err error) {
	if rs.err == nil {
		rs.err = err
	}
	rs.done = true
}

// decodeRow parses each text value back into a boxed value of the column's
// declared type — the client-side half of the ODBC conversion plus the
// per-object materialization a Python client pays.
func decodeRow(buf []byte, cols []Column) ([]any, error) {
	row := make([]any, 0, len(cols))
	for len(row) < len(cols) {
		if len(buf) == 0 {
			return nil, fmt.Errorf("odbc: truncated row")
		}
		tag := buf[0]
		buf = buf[1:]
		if tag == tagNull {
			row = append(row, nil)
			continue
		}
		if tag != tagText {
			return nil, fmt.Errorf("odbc: unknown value tag %d", tag)
		}
		if len(buf) < 4 {
			return nil, fmt.Errorf("odbc: truncated value length")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < n {
			return nil, fmt.Errorf("odbc: truncated value payload")
		}
		text := string(buf[:n])
		buf = buf[n:]
		v, err := parseValue(text, cols[len(row)].Type)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

func parseValue(text string, t types.T) (any, error) {
	switch t {
	case types.Bool:
		return text == "true", nil
	case types.Int32:
		v, err := strconv.ParseInt(text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("odbc: parsing %q: %w", text, err)
		}
		return int32(v), nil
	case types.Int64:
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("odbc: parsing %q: %w", text, err)
		}
		return v, nil
	case types.Float32:
		v, err := strconv.ParseFloat(text, 32)
		if err != nil {
			return nil, fmt.Errorf("odbc: parsing %q: %w", text, err)
		}
		return float32(v), nil
	case types.Float64:
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("odbc: parsing %q: %w", text, err)
		}
		return v, nil
	default:
		return text, nil
	}
}

// Query runs a query against the database over an in-memory network pipe
// and returns a client-side cursor. A server goroutine streams the result;
// the returned Rows reads from the connection like a remote client.
func Query(d *db.Database, query string) (*Rows, error) {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		(&Server{DB: d}).Serve(query, server)
	}()
	r := bufio.NewReaderSize(client, 64<<10)
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("odbc: reading schema: %w", err)
	}
	switch tag {
	case msgError:
		n, _ := binary.ReadUvarint(r)
		buf := make([]byte, n)
		io.ReadFull(r, buf)
		return nil, fmt.Errorf("odbc: server: %s", buf)
	case msgSchema:
	default:
		return nil, fmt.Errorf("odbc: expected schema message, got 0x%x", tag)
	}
	ncols, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, ncols)
	for i := range cols {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		t, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: string(name), Type: types.T(t)}
	}
	return &Rows{r: r, cols: cols}, nil
}
