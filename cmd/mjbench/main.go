// Command mjbench regenerates the evaluation of "Exploration of Approaches
// for In-Database ML" (EDBT 2023): Figure 8 (dense-network inference
// runtimes), Figure 9 (LSTM inference runtimes), Table 3 (peak memory) and
// Table 2 (qualitative comparison).
//
// Usage:
//
//	mjbench -experiment fig8|fig9|table2|table3|all [flags]
//
// The default -scale small shrinks the grid so a full run finishes in
// minutes on a laptop; -scale paper runs the paper's exact parameter grid
// (widths {32,128,512}, depths {2,4,8}, 50k–500k fact tuples), which takes
// much longer — mostly in the ML-To-SQL cells, just as the paper's plots
// show.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"indbml/internal/bench"
	"indbml/internal/workload"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "fig8 | fig9 | table2 | table3 | all")
		scale       = flag.String("scale", "small", "small | medium | paper")
		partitions  = flag.Int("partitions", 12, "fact/model table partitions (paper: 12)")
		parallelism = flag.Int("parallelism", 12, "concurrent partition plans (paper: 12)")
		approaches  = flag.String("approaches", "", "comma-separated approach filter (default: all)")
		csvPath     = flag.String("csv", "", "also write raw measurements as CSV to this file")
		limit       = flag.Int64("mltosql-limit", 0, "skip ML-To-SQL cells above tuples×Σwidth (0 = auto per scale)")
	)
	flag.Parse()

	r := bench.NewRunner()
	r.Partitions = *partitions
	r.Parallelism = *parallelism

	var sizes, widths, depths, lstmWidths []int
	var table3Tuples, table2Small, table2Large int
	switch *scale {
	case "paper":
		sizes, widths, depths, lstmWidths = workload.FactSizes, workload.DenseWidths, workload.DenseDepths, workload.LSTMWidths
		table3Tuples, table2Small, table2Large = 100_000, 50_000, 500_000
		r.MLToSQLCellLimit = 2_000_000_000
	case "medium":
		sizes = []int{50_000, 100_000, 200_000}
		widths, depths = []int{32, 128, 512}, []int{2, 4}
		lstmWidths = []int{32, 128}
		table3Tuples, table2Small, table2Large = 100_000, 50_000, 200_000
		r.MLToSQLCellLimit = 800_000_000
	case "small":
		sizes = []int{10_000, 20_000, 50_000}
		widths, depths = []int{32, 128}, []int{2, 4}
		lstmWidths = []int{32, 128}
		table3Tuples, table2Small, table2Large = 20_000, 10_000, 50_000
		r.MLToSQLCellLimit = 300_000_000
	default:
		fatalf("unknown -scale %q", *scale)
	}
	if *limit > 0 {
		r.MLToSQLCellLimit = *limit
	}

	var filter []bench.Approach
	if *approaches != "" {
		for _, name := range strings.Split(*approaches, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range bench.AllApproaches {
				if strings.EqualFold(string(a), name) {
					filter = append(filter, a)
					found = true
				}
			}
			if !found {
				fatalf("unknown approach %q (want one of %v)", name, bench.AllApproaches)
			}
		}
	}

	var all []bench.Measurement
	out := os.Stdout
	run := func(name string, fn func() ([]bench.Measurement, error)) {
		ms, err := fn()
		all = append(all, ms...)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
	}

	fmt.Fprintf(out, "mjbench: scale=%s partitions=%d parallelism=%d\n", *scale, *partitions, *parallelism)
	fmt.Fprintln(out, "GPU series are computed on the simulated device and marked [sim]; see DESIGN.md.")

	if *experiment == "fig8" || *experiment == "all" {
		run("fig8", func() ([]bench.Measurement, error) {
			return r.Figure8(bench.Figure8Config{Widths: widths, Depths: depths, Sizes: sizes, Approaches: filter}, out)
		})
	}
	if *experiment == "fig9" || *experiment == "all" {
		run("fig9", func() ([]bench.Measurement, error) {
			return r.Figure9(bench.Figure9Config{Widths: lstmWidths, Sizes: sizes, Approaches: filter}, out)
		})
	}
	if *experiment == "table3" || *experiment == "all" {
		run("table3", func() ([]bench.Measurement, error) { return r.Table3(table3Tuples, out) })
	}
	if *experiment == "table2" || *experiment == "all" {
		run("table2", func() ([]bench.Measurement, error) { return nil, r.Table2(out, table2Small, table2Large) })
	}
	if !strings.Contains("fig8 fig9 table2 table3 all", *experiment) {
		fatalf("unknown -experiment %q", *experiment)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatalf("creating %s: %v", *csvPath, err)
		}
		bench.CSV(f, all)
		if err := f.Close(); err != nil {
			fatalf("writing %s: %v", *csvPath, err)
		}
		fmt.Fprintf(out, "\nwrote %s measurements to %s\n", strconv.Itoa(len(all)), *csvPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mjbench: "+format+"\n", args...)
	os.Exit(1)
}
