// Command ml2sql is the CLI face of the ML-To-SQL framework (Sec. 4): given
// a trained model in the Keras-like JSON format of package nn, it emits
//
//   - the CREATE TABLE + INSERT statements that load the model into its
//     relational representation (Sec. 4.1), and
//   - the nested SQL query performing the full ModelJoin inference
//     (Listings 1–4), ready to run on any SQL-compliant engine.
//
// Usage:
//
//	ml2sql -model model.json -fact my_table -inputs c1,c2,c3,c4 [flags]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"indbml/internal/core/mltosql"
	"indbml/internal/core/relmodel"
	"indbml/internal/nn"
)

func main() {
	var (
		modelPath = flag.String("model", "", "path to the model JSON (required)")
		factTable = flag.String("fact", "", "fact table name (required)")
		inputs    = flag.String("inputs", "", "comma-separated input column names (required)")
		idCol     = flag.String("id", "id", "unique row identifier column")
		tableName = flag.String("table", "", "model table name (default: model name)")
		layout    = flag.String("layout", "pairs", "relational layout: pairs | node-id (Sec. 4.4)")
		native    = flag.Bool("native-functions", false, "emit TANH/SIGMOID/RELU builtins instead of portable EXP/CASE")
		noFilter  = flag.Bool("no-layer-filter", false, "omit the per-join layer predicates of Sec. 4.4")
		pretty    = flag.Bool("pretty", true, "indent the generated query")
		loadOnly  = flag.Bool("load-only", false, "emit only the model-table DDL/DML")
		queryOnly = flag.Bool("query-only", false, "emit only the inference query")
	)
	flag.Parse()

	if *modelPath == "" || (*factTable == "" && !*loadOnly) || (*inputs == "" && !*loadOnly) {
		flag.Usage()
		os.Exit(2)
	}
	model, err := nn.LoadFile(*modelPath)
	if err != nil {
		fatalf("%v", err)
	}
	lay := relmodel.LayoutPairs
	switch *layout {
	case "pairs":
	case "node-id", "nodeid":
		lay = relmodel.LayoutNodeID
	default:
		fatalf("unknown -layout %q", *layout)
	}
	name := *tableName
	if name == "" {
		name = model.Name
	}
	tbl, meta, err := relmodel.Export(model, relmodel.ExportOptions{Layout: lay, TableName: name})
	if err != nil {
		fatalf("%v", err)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if !*queryOnly {
		fmt.Fprintf(out, "-- relational model representation of %q (%s layout, %d edges)\n",
			model.Name, lay, tbl.RowCount())
		if err := relmodel.WriteLoadSQL(out, tbl, meta); err != nil {
			fatalf("%v", err)
		}
	}
	if *loadOnly {
		return
	}

	gen, err := mltosql.New(meta, mltosql.Options{
		FactTable:       *factTable,
		ModelTable:      name,
		IDColumn:        *idCol,
		InputColumns:    strings.Split(*inputs, ","),
		NativeFunctions: *native,
		LayerFilter:     !*noFilter,
		Pretty:          *pretty,
	})
	if err != nil {
		fatalf("%v", err)
	}
	query, err := gen.Generate()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(out, "\n-- ModelJoin inference query (Listing 1 nesting)\n%s;\n", query)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ml2sql: "+format+"\n", args...)
	os.Exit(1)
}
