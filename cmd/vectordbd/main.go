// Command vectordbd runs the engine as a network daemon: it listens for
// framed-protocol connections (package wire), serves SQL — including MODEL
// JOIN inference queries — with admission control and per-query deadlines,
// and drains gracefully on SIGINT/SIGTERM.
//
// Connect with the interactive shell:
//
//	vectordbd -addr 127.0.0.1:5433 -demo &
//	vectordb -connect 127.0.0.1:5433
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"indbml/internal/device"
	"indbml/internal/dist"
	"indbml/internal/engine/db"
	"indbml/internal/infersched"
	"indbml/internal/server"
	"indbml/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address (host:port)")
	slots := flag.Int("slots", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "admitted-statement queue depth (0 = reject when all slots busy)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max time a statement queues for a slot (0 = wait until its deadline)")
	idle := flag.Duration("idle", 5*time.Minute, "close sessions idle this long (0 = never)")
	maxQuery := flag.Duration("max-query", 0, "cap every query's run time (0 = uncapped)")
	partitions := flag.Int("partitions", 4, "default table partition count")
	parallelism := flag.Int("parallelism", 0, "query parallelism (0 = GOMAXPROCS)")
	modelCache := flag.Int("model-cache", 0, "model artifact cache entries (0 = default 32, negative = disabled)")
	flightSize := flag.Int("flight-recorder-size", 0, "query flight-recorder ring capacity (0 = default 1024, negative = disabled)")
	batchMaxWait := flag.Duration("batch-max-wait", 0, "max time a MODEL JOIN batch waits to coalesce with concurrent queries (0 = default 500µs)")
	batchMaxRows := flag.Int("batch-max-rows", 0, "max rows per coalesced inference super-batch (0 = default 8192)")
	batchInflight := flag.Int("batch-inflight", 0, "max concurrently executing inference batches per device (0 = default 2)")
	noBatching := flag.Bool("no-batching", false, "disable the batched inference scheduler (every MODEL JOIN drives the device directly)")
	demo := flag.Bool("demo", false, "load the iris/sinus demo workload at startup")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget before in-flight queries are canceled")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on this address (empty = disabled)")
	withPprof := flag.Bool("pprof", false, "also serve /debug/pprof/ on -metrics-addr")
	slowLogPath := flag.String("slow-query-log", "", "append slow-query JSON lines to this file ('-' = stderr, empty = disabled)")
	slowThreshold := flag.Duration("slow-query-threshold", 500*time.Millisecond, "log statements slower than this (errors and cancellations are always logged)")
	shards := flag.String("shards", "", "comma-separated shard daemon addresses; when set, this daemon runs as the fleet coordinator")
	telemetryInterval := flag.Duration("telemetry-interval", 0, "metrics-history sampling tick (0 = default 1s, negative = disabled)")
	alertLogPath := flag.String("alert-log", "", "append alert-transition JSON lines to this file ('-' = stderr, empty = disabled)")
	var alertRules multiFlag
	flag.Var(&alertRules, "alert", "declare an alert rule at startup, e.g. 'hot_p99 ON p99(vectordb_statement_seconds) > 0.5 FOR 30s' (repeatable)")
	gpuPace := flag.Bool("gpu-pace", false, "pace the simulated GPU: operations occupy their modeled time (for honest multi-process scaling experiments)")
	gpuGemm := flag.Float64("gpu-gemm-throughput", 0, "override the simulated GPU matrix-multiply rate in FLOP/s (0 = default)")
	flag.Parse()

	gpuCfg := device.DefaultGPUConfig()
	gpuCfg.Pace = *gpuPace
	if *gpuGemm > 0 {
		gpuCfg.GemmThroughput = *gpuGemm
	}

	d := db.Open(db.Options{
		GPU:                gpuCfg,
		DefaultPartitions:  *partitions,
		Parallelism:        *parallelism,
		ModelCacheEntries:  *modelCache,
		FlightRecorderSize: *flightSize,
		InferSched: infersched.Config{
			MaxWait:      *batchMaxWait,
			MaxBatchRows: *batchMaxRows,
			MaxInFlight:  *batchInflight,
		},
		DisableInferSched: *noBatching,
	})
	if *demo {
		if err := workload.LoadDemo(d); err != nil {
			log.Fatalf("vectordbd: loading demo workload: %v", err)
		}
		log.Printf("demo workload loaded: %v", workload.DemoTables)
	}

	if *shards != "" {
		addrs := strings.Split(*shards, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		co := dist.New(d, addrs)
		defer co.Close()
		log.Printf("coordinator mode: %d shards %v", co.NumShards(), addrs)
		if *demo {
			// Sharded MODEL JOIN runs inference shard-side, so the demo
			// model must exist on every shard.
			if err := co.ReplicateModel(context.Background(), "iris_model"); err != nil {
				log.Fatalf("vectordbd: replicating demo model to shards: %v", err)
			}
			log.Printf("demo model iris_model replicated to %d shards", co.NumShards())
		}
	}

	slowLog := openLogSink(*slowLogPath, "slow-query log")
	alertLog := openLogSink(*alertLogPath, "alert log")

	s := server.New(d, server.Config{
		QuerySlots:         *slots,
		QueueDepth:         *queue,
		QueueWait:          *queueWait,
		IdleTimeout:        *idle,
		MaxQueryDuration:   *maxQuery,
		SlowQueryLog:       slowLog,
		SlowQueryThreshold: *slowThreshold,
		TelemetryInterval:  *telemetryInterval,
		AlertLog:           alertLog,
	})

	// -alert rules run through the full CREATE ALERT path, so a coordinator
	// broadcasts them to its shards exactly like SQL-declared ones.
	for _, rule := range alertRules {
		if err := d.Exec("CREATE ALERT " + rule); err != nil {
			log.Fatalf("vectordbd: -alert %q: %v", rule, err)
		}
		log.Printf("alert rule installed: %s", rule)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.Metrics().Handler())
		if *withPprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("vectordbd: metrics listener: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics (pprof: %v)", *metricsAddr, *withPprof)
	}

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe(*addr) }()
	log.Printf("vectordbd listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("vectordbd: serve: %v", err)
		}
	case sig := <-sigc:
		log.Printf("received %s; draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := s.Shutdown(ctx)
		// The wire listener is down; close the metrics port too so drain
		// leaves nothing serving (it previously leaked past shutdown).
		shutdownMetrics(ctx, metricsSrv)
		if err != nil {
			log.Printf("drain budget exceeded; in-flight queries canceled: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
}

// multiFlag collects a repeatable string flag (-alert can be given once per
// rule).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// openLogSink resolves a log-path flag: "" = disabled, "-" = stderr,
// anything else = append to that file.
func openLogSink(path, what string) io.Writer {
	switch path {
	case "":
		return nil
	case "-":
		return os.Stderr
	default:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("vectordbd: opening %s: %v", what, err)
		}
		return f
	}
}

// shutdownMetrics gracefully stops the -metrics-addr HTTP server within
// the remaining drain budget, force-closing if that expires.
func shutdownMetrics(ctx context.Context, srv *http.Server) {
	if srv == nil {
		return
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
}
