// Command vectordb is an interactive SQL shell over the engine — handy for
// exploring the relational model representation and the MODEL JOIN syntax.
//
// By default it runs an embedded engine in-process. With -connect it dials
// a vectordbd daemon instead and speaks the framed wire protocol, so the
// same shell drives both the library and the served engine.
//
// Besides SQL (CREATE TABLE / INSERT / SELECT / EXPLAIN / DROP), it offers
// meta commands:
//
//	\load-model <path.json> [partitions]   register a model from JSON (embedded mode)
//	\tables                                list tables and models (embedded mode)
//	\demo                                  load a small iris demo setup (embedded mode)
//	\status                                server stats snapshot (-connect mode)
//	\batcher                               inference batching scheduler report
//	\metrics [prefix]                      metrics page (shell-local or server registry), optionally filtered
//	\alerts                                alert rules and live state from system.alerts
//	\queries                               recent statements from system.queries
//	\active                                in-flight statements from system.active_queries
//	\shards                                fleet health from system.shards (-connect mode)
//	\kill <query_id>                       cancel an in-flight statement
//	\trace on|off                          run every SELECT as EXPLAIN ANALYZE
//	\q                                     quit
//
// Example session:
//
//	> \demo
//	> SELECT class, COUNT(*) AS n, AVG(prediction) AS score
//	  FROM iris MODEL JOIN iris_model PREDICT (sepal_length, sepal_width, petal_length, petal_width)
//	  GROUP BY class ORDER BY class;
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"indbml/internal/core/relmodel"
	"indbml/internal/engine/db"
	"indbml/internal/engine/vector"
	"indbml/internal/flight"
	"indbml/internal/telemetry"
	"indbml/internal/metrics"
	"indbml/internal/nn"
	"indbml/internal/server/client"
	"indbml/internal/workload"
)

// session abstracts over the embedded engine and a remote daemon, so the
// REPL loop is shared.
type session interface {
	runSQL(text string)
	meta(line string) bool // false → quit
	close()
}

func main() {
	connect := flag.String("connect", "", "dial a vectordbd daemon at host:port instead of running an embedded engine")
	flag.Parse()

	var s session
	if *connect != "" {
		c, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vectordb: connect:", err)
			os.Exit(1)
		}
		fmt.Printf("vectordb — connected to %s (\\q quits, \\status shows server stats)\n", *connect)
		s = &remoteSession{c: c}
	} else {
		fmt.Println("vectordb — in-database ML playground (\\q quits, \\demo loads sample data)")
		s = newLocalSession(db.Open(db.Options{DefaultPartitions: 4, Parallelism: 4}))
	}
	defer s.close()
	repl(s)
}

// repl reads statements (terminated by ';') and meta commands (lines
// starting with '\', honored even mid-statement) until EOF or \q. The
// prompt is derived from the statement buffer, so it always reflects
// whether a continuation is pending.
func repl(s session) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)

	var stmt strings.Builder
	for {
		if stmt.Len() == 0 {
			fmt.Print("> ")
		} else {
			fmt.Print("… ")
		}
		if !in.Scan() {
			if err := in.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "vectordb: reading input:", err)
			}
			fmt.Println()
			if stmt.Len() > 0 {
				// Ctrl-D mid-statement: tell the user what was dropped
				// instead of exiting silently.
				fmt.Fprintf(os.Stderr, "vectordb: discarding unfinished statement: %s\n",
					strings.TrimSpace(stmt.String()))
			}
			return
		}
		line := strings.TrimSpace(in.Text())
		if strings.HasPrefix(line, "\\") {
			if !s.meta(line) {
				return
			}
			continue
		}
		if line == "" {
			continue
		}
		stmt.WriteString(line)
		stmt.WriteByte(' ')
		if !strings.HasSuffix(line, ";") {
			continue
		}
		text := strings.TrimSuffix(strings.TrimSpace(stmt.String()), ";")
		stmt.Reset()
		s.runSQL(text)
	}
}

// ---- embedded engine session ----

type localSession struct {
	d       *db.Database
	traceOn bool

	// The embedded shell keeps its own small registry so \metrics works
	// without a server: statement latency plus model-cache effectiveness.
	reg     *metrics.Registry
	latency *metrics.Histogram
	tel     *telemetry.Sampler
}

func newLocalSession(d *db.Database) *localSession {
	reg := metrics.NewRegistry()
	s := &localSession{
		d:   d,
		reg: reg,
		latency: reg.NewHistogram("vectordb_statement_seconds",
			"Statement wall time in the embedded shell.", metrics.DefaultLatencyBounds),
	}
	reg.NewGaugeFunc("vectordb_model_cache_hits_total", "Model artifact cache hits.",
		func() float64 { return float64(d.ModelCacheStats().Hits) })
	reg.NewGaugeFunc("vectordb_model_cache_misses_total", "Model artifact cache misses.",
		func() float64 { return float64(d.ModelCacheStats().Misses) })
	reg.NewGaugeFunc("vectordb_model_cache_entries", "Model artifact cache resident entries.",
		func() float64 { return float64(d.ModelCacheStats().Entries) })
	metrics.RegisterRuntime(reg)
	// Expose the shell-local registry as system.metrics so the same SQL
	// drill-down workflow works without a server.
	d.RegisterVirtualTable(flight.MetricsTable(reg))
	// And sample it, so CREATE ALERT / \alerts / system.metrics_history
	// work in the embedded shell too.
	s.tel = telemetry.New(reg, telemetry.Config{})
	d.SetAlertEngine(s.tel.Alerts())
	d.RegisterVirtualTable(telemetry.HistoryTable(s.tel))
	d.RegisterVirtualTable(telemetry.LatencyTable(s.tel))
	d.RegisterVirtualTable(telemetry.AlertsTable(s.tel))
	s.tel.Start()
	return s
}

// queriesSQL is what \queries runs: the most recent flight-recorder
// entries, newest first.
const queriesSQL = "SELECT query_id, kind, approach, latency_ns, rows_out, cache, sql " +
	"FROM system.queries ORDER BY query_id DESC LIMIT 20"

// activeSQL is what \active runs: every in-flight statement with its live
// progress counters (the listing SELECT itself shows up too, running).
const activeSQL = "SELECT query_id, session, state, elapsed_ns, rows_scanned, phase, sql " +
	"FROM system.active_queries ORDER BY query_id"

// shardsSQL is what \shards runs against a coordinator: the fleet health
// table (liveness probe, pool state, cumulative fragment errors).
const shardsSQL = "SELECT shard_id, addr, reachable, idle_conns, fragments, fragment_errors, last_error " +
	"FROM system.shards ORDER BY shard_id"

// alertsSQL is what \alerts runs: every declared rule with its live state
// (fleet-wide with a shard column when connected to a coordinator).
const alertsSQL = "SELECT name, state, value, threshold, fired_count, expr " +
	"FROM system.alerts ORDER BY name"

// metricsPrefixArg extracts the optional name-prefix filter from
// "\metrics [prefix]" ("" = full page).
func metricsPrefixArg(fields []string) string {
	if len(fields) > 1 {
		return fields[1]
	}
	return ""
}

// parseKillArg extracts the query ID from "\kill <id>", reporting usage
// errors itself; ok is false when nothing should be killed.
func parseKillArg(fields []string) (uint64, bool) {
	if len(fields) != 2 {
		fmt.Println("usage: \\kill <query_id>")
		return 0, false
	}
	id, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil || id == 0 {
		fmt.Println("usage: \\kill <query_id>  (IDs are listed by \\active)")
		return 0, false
	}
	return id, true
}

func (s *localSession) close() {
	if s.tel != nil {
		s.tel.Stop()
	}
}

func (s *localSession) runSQL(text string) {
	start := time.Now()
	defer func() { s.latency.ObserveDuration(time.Since(start)) }()
	upper := strings.ToUpper(strings.TrimSpace(text))
	switch {
	case strings.HasPrefix(upper, "EXPLAIN ANALYZE"):
		out, err := s.d.ExplainAnalyzeContext(context.Background(), strings.TrimSpace(text[len("EXPLAIN ANALYZE"):]))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(out)
	case strings.HasPrefix(upper, "EXPLAIN"):
		plan, err := s.d.Explain(strings.TrimSpace(text[len("EXPLAIN"):]))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(plan)
	case strings.HasPrefix(upper, "SELECT"):
		if s.traceOn {
			res, qt, err := s.d.QueryAnalyzeContext(context.Background(), text)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			printResult(res)
			fmt.Print(qt.Render())
			return
		}
		res, err := s.d.Query(text)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(res)
	default:
		if err := s.d.Exec(text); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("ok")
	}
}

// meta handles backslash commands; it returns false to quit.
func (s *localSession) meta(line string) bool {
	d := s.d
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\tables":
		fmt.Println(catalogSummary(d))
	case "\\costs":
		if len(fields) < 3 {
			fmt.Println("usage: \\costs <model> <tuples>")
			return true
		}
		tuples, err := strconv.Atoi(fields[2])
		if err != nil || tuples <= 0 {
			fmt.Println("usage: \\costs <model> <tuples>")
			return true
		}
		adv := d.NewAdvisor()
		txt, err := adv.ExplainCosts(fields[1], tuples, true)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(txt)
		dev, _ := adv.AdviseDevice(fields[1], tuples)
		fmt.Printf("advised MODEL JOIN device: %s\n", dev)
	case "\\demo":
		if err := workload.LoadDemo(d); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Println("demo loaded: tables iris, sinus, sinus_windowed; model iris_model (3 outputs)")
		fmt.Println(`try: SELECT * FROM iris MODEL JOIN iris_model PREDICT (sepal_length, sepal_width, petal_length, petal_width) LIMIT 5;`)
	case "\\load-model":
		if len(fields) < 2 {
			fmt.Println("usage: \\load-model <path.json> [partitions]")
			return true
		}
		parts := 4
		if len(fields) >= 3 {
			if n, err := strconv.Atoi(fields[2]); err == nil {
				parts = n
			}
		}
		m, err := nn.LoadFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		if _, err := d.RegisterModel(m, relmodel.ExportOptions{Partitions: parts}); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("registered model %q (%d parameters)\n", m.Name, m.ParamCount())
	case "\\cache":
		st := d.ModelCacheStats()
		fmt.Printf("model cache: hits=%d misses=%d evictions=%d entries=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Entries)
	case "\\metrics":
		fmt.Print(s.reg.TextFiltered(metricsPrefixArg(fields)))
	case "\\alerts":
		res, err := s.d.Query(alertsSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printResult(res)
	case "\\batcher":
		fmt.Print(d.InferSched().StatsText())
	case "\\queries":
		res, err := s.d.Query(queriesSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printResult(res)
	case "\\active":
		res, err := s.d.Query(activeSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printResult(res)
	case "\\kill":
		id, ok := parseKillArg(fields)
		if !ok {
			return true
		}
		if err := s.d.Kill(id); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("killed query %d\n", id)
	case "\\trace":
		s.traceOn = parseTraceArg(fields, s.traceOn)
	default:
		fmt.Println("unknown meta command; available: \\q \\tables \\demo \\load-model \\costs \\cache \\batcher \\metrics \\alerts \\queries \\active \\kill \\trace")
	}
	return true
}

// parseTraceArg handles "\trace on|off", reporting the resulting state; a
// bare "\trace" just shows it.
func parseTraceArg(fields []string, cur bool) bool {
	if len(fields) >= 2 {
		switch strings.ToLower(fields[1]) {
		case "on":
			cur = true
		case "off":
			cur = false
		default:
			fmt.Println("usage: \\trace on|off")
			return cur
		}
	}
	if cur {
		fmt.Println("trace is on: SELECTs run as EXPLAIN ANALYZE")
	} else {
		fmt.Println("trace is off")
	}
	return cur
}

func printResult(b *vector.Batch) {
	const maxRows = 50
	widths := make([]int, b.Schema.Len())
	for i := range widths {
		widths[i] = len(b.Schema.Col(i).Name)
	}
	rows := b.Len()
	shown := rows
	if shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for r := 0; r < shown; r++ {
		cells[r] = make([]string, b.Schema.Len())
		for c := range cells[r] {
			cells[r][c] = b.Vecs[c].Datum(r).String()
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	for i := 0; i < b.Schema.Len(); i++ {
		fmt.Printf("%-*s  ", widths[i], b.Schema.Col(i).Name)
	}
	fmt.Println()
	for r := 0; r < shown; r++ {
		for c := range cells[r] {
			fmt.Printf("%-*s  ", widths[c], cells[r][c])
		}
		fmt.Println()
	}
	if rows > shown {
		fmt.Printf("… (%d more rows)\n", rows-shown)
	}
	fmt.Printf("(%d rows)\n", rows)
}

func catalogSummary(d *db.Database) string {
	// The facade intentionally has no catalog-iteration API for queries;
	// the shell keeps its own notes via \demo and \load-model. Listing what
	// standard workloads create is good enough for a playground.
	var sb strings.Builder
	for _, name := range workload.DemoTables {
		if t, err := d.Table(name); err == nil {
			fmt.Fprintf(&sb, "%-16s %8d rows  %s\n", t.Name, t.RowCount(), t.Schema)
		}
	}
	if sb.Len() == 0 {
		return "(no demo tables loaded; try \\demo)"
	}
	return sb.String()
}

// ---- remote daemon session ----

type remoteSession struct {
	c       *client.Client
	traceOn bool
}

func (s *remoteSession) close() { s.c.Close() }

func (s *remoteSession) runSQL(text string) {
	upper := strings.ToUpper(strings.TrimSpace(text))
	switch {
	case strings.HasPrefix(upper, "EXPLAIN"), upper == "STATUS", upper == "METRICS", upper == "BATCHER",
		strings.HasPrefix(upper, "SET "):
		out, err := s.c.Command(text)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(out)
		if !strings.HasSuffix(out, "\n") {
			fmt.Println()
		}
	case strings.HasPrefix(upper, "SELECT"):
		if s.traceOn {
			// The wire protocol returns EXPLAIN ANALYZE as one text
			// payload: the annotated plan, executed server-side.
			out, err := s.c.Command("EXPLAIN ANALYZE " + text)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Print(out)
			return
		}
		rows, err := s.c.Query(text)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
	default:
		if err := s.c.Exec(text); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("ok")
	}
}

func (s *remoteSession) meta(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\status":
		out, err := s.c.Status()
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Println(out)
	case "\\metrics":
		out, err := s.c.MetricsFiltered(metricsPrefixArg(fields))
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(out)
	case "\\alerts":
		rows, err := s.c.Query(alertsSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printRows(rows)
	case "\\batcher":
		out, err := s.c.Batcher()
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(out)
	case "\\queries":
		rows, err := s.c.Query(queriesSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printRows(rows)
	case "\\active":
		rows, err := s.c.Query(activeSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printRows(rows)
	case "\\shards":
		rows, err := s.c.Query(shardsSQL)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		printRows(rows)
	case "\\kill":
		id, ok := parseKillArg(fields)
		if !ok {
			return true
		}
		if err := s.c.Kill(id); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("killed query %d\n", id)
	case "\\trace":
		s.traceOn = parseTraceArg(fields, s.traceOn)
	default:
		fmt.Println("unknown meta command; available in -connect mode: \\q \\status \\batcher \\metrics \\alerts \\queries \\active \\shards \\kill \\trace")
	}
	return true
}

// printRows renders a streamed remote result: the first 50 rows as a
// table, then a count of the rest (still fully consumed, so the
// connection stays framed).
func printRows(rows *client.Rows) {
	const maxRows = 50
	cols := rows.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c.Name)
	}
	var cells [][]string
	total := 0
	for row := rows.Next(); row != nil; row = rows.Next() {
		total++
		if total > maxRows {
			continue
		}
		rc := make([]string, len(cols))
		for i, v := range row {
			if v == nil {
				rc[i] = "NULL"
			} else {
				rc[i] = fmt.Sprint(v)
			}
			if len(rc[i]) > widths[i] {
				widths[i] = len(rc[i])
			}
		}
		cells = append(cells, rc)
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, c := range cols {
		fmt.Printf("%-*s  ", widths[i], c.Name)
	}
	fmt.Println()
	for _, rc := range cells {
		for i := range rc {
			fmt.Printf("%-*s  ", widths[i], rc[i])
		}
		fmt.Println()
	}
	if total > len(cells) {
		fmt.Printf("… (%d more rows)\n", total-len(cells))
	}
	fmt.Printf("(%d rows)\n", total)
}
