// Command vectordb is an interactive SQL shell over the engine — handy for
// exploring the relational model representation and the MODEL JOIN syntax.
//
// Besides SQL (CREATE TABLE / INSERT / SELECT / EXPLAIN / DROP), it offers
// meta commands:
//
//	\load-model <path.json> [partitions]   register a model from JSON
//	\tables                                list tables and models
//	\demo                                  load a small iris demo setup
//	\q                                     quit
//
// Example session:
//
//	> \demo
//	> SELECT class, COUNT(*) AS n, AVG(prediction) AS score
//	  FROM iris MODEL JOIN iris_model PREDICT (sepal_length, sepal_width, petal_length, petal_width)
//	  GROUP BY class ORDER BY class;
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"indbml/internal/core/relmodel"
	"indbml/internal/engine/db"
	"indbml/internal/engine/vector"
	"indbml/internal/nn"
	"indbml/internal/workload"
)

func main() {
	d := db.Open(db.Options{DefaultPartitions: 4, Parallelism: 4})
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("vectordb — in-database ML playground (\\q quits, \\demo loads sample data)")

	var stmt strings.Builder
	prompt := "> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if stmt.Len() == 0 && strings.HasPrefix(line, "\\") {
			if !meta(d, line) {
				return
			}
			continue
		}
		if line == "" {
			continue
		}
		stmt.WriteString(line)
		stmt.WriteByte(' ')
		if !strings.HasSuffix(line, ";") {
			prompt = "… "
			continue
		}
		prompt = "> "
		text := strings.TrimSuffix(strings.TrimSpace(stmt.String()), ";")
		stmt.Reset()
		runSQL(d, text)
	}
}

func runSQL(d *db.Database, text string) {
	upper := strings.ToUpper(strings.TrimSpace(text))
	switch {
	case strings.HasPrefix(upper, "EXPLAIN"):
		plan, err := d.Explain(strings.TrimSpace(text[len("EXPLAIN"):]))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(plan)
	case strings.HasPrefix(upper, "SELECT"):
		res, err := d.Query(text)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(res)
	default:
		if err := d.Exec(text); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("ok")
	}
}

func printResult(b *vector.Batch) {
	const maxRows = 50
	widths := make([]int, b.Schema.Len())
	for i := range widths {
		widths[i] = len(b.Schema.Col(i).Name)
	}
	rows := b.Len()
	shown := rows
	if shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for r := 0; r < shown; r++ {
		cells[r] = make([]string, b.Schema.Len())
		for c := range cells[r] {
			cells[r][c] = b.Vecs[c].Datum(r).String()
			if len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	for i := 0; i < b.Schema.Len(); i++ {
		fmt.Printf("%-*s  ", widths[i], b.Schema.Col(i).Name)
	}
	fmt.Println()
	for r := 0; r < shown; r++ {
		for c := range cells[r] {
			fmt.Printf("%-*s  ", widths[c], cells[r][c])
		}
		fmt.Println()
	}
	if rows > shown {
		fmt.Printf("… (%d more rows)\n", rows-shown)
	}
	fmt.Printf("(%d rows)\n", rows)
}

// meta handles backslash commands; it returns false to quit.
func meta(d *db.Database, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\tables":
		fmt.Println(catalogSummary(d))
	case "\\costs":
		if len(fields) < 3 {
			fmt.Println("usage: \\costs <model> <tuples>")
			return true
		}
		tuples, err := strconv.Atoi(fields[2])
		if err != nil || tuples <= 0 {
			fmt.Println("usage: \\costs <model> <tuples>")
			return true
		}
		adv := d.NewAdvisor()
		txt, err := adv.ExplainCosts(fields[1], tuples, true)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(txt)
		dev, _ := adv.AdviseDevice(fields[1], tuples)
		fmt.Printf("advised MODEL JOIN device: %s\n", dev)
	case "\\demo":
		loadDemo(d)
	case "\\load-model":
		if len(fields) < 2 {
			fmt.Println("usage: \\load-model <path.json> [partitions]")
			return true
		}
		parts := 4
		if len(fields) >= 3 {
			if n, err := strconv.Atoi(fields[2]); err == nil {
				parts = n
			}
		}
		m, err := nn.LoadFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		if _, err := d.RegisterModel(m, relmodel.ExportOptions{Partitions: parts}); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("registered model %q (%d parameters)\n", m.Name, m.ParamCount())
	default:
		fmt.Println("unknown meta command; available: \\q \\tables \\demo \\load-model \\costs")
	}
	return true
}

func catalogSummary(d *db.Database) string {
	// The facade intentionally has no catalog-iteration API for queries;
	// the shell keeps its own notes via \demo and \load-model. Listing what
	// standard workloads create is good enough for a playground.
	var sb strings.Builder
	for _, name := range []string{"iris", "iris_model", "sinus", "sinus_windowed"} {
		if t, err := d.Table(name); err == nil {
			fmt.Fprintf(&sb, "%-16s %8d rows  %s\n", t.Name, t.RowCount(), t.Schema)
		}
	}
	if sb.Len() == 0 {
		return "(no demo tables loaded; try \\demo)"
	}
	return sb.String()
}

func loadDemo(d *db.Database) {
	tbl, _ := workload.IrisTable("iris", 150, 4)
	d.RegisterTable(tbl)
	// Train on the raw (unscaled) features so predictions over the stored
	// table columns are directly meaningful.
	var x, y [][]float32
	for _, r := range workload.Iris() {
		x = append(x, []float32{r.SepalLength, r.SepalWidth, r.PetalLength, r.PetalWidth})
		target := make([]float32, 3)
		target[r.Class] = 1
		y = append(y, target)
	}
	model := &nn.Model{Name: "iris_model", Layers: []nn.Layer{
		nn.NewDense(4, 16, nn.Tanh), nn.NewDense(16, 3, nn.Sigmoid),
	}}
	seedDense(model)
	if _, err := nn.Train(model, x, y, nn.TrainConfig{Epochs: 400, LearningRate: 0.05, Seed: 7}); err != nil {
		fmt.Println("error training demo model:", err)
		return
	}
	if _, err := d.RegisterModel(model, relmodel.ExportOptions{Partitions: 4}); err != nil {
		fmt.Println("error:", err)
		return
	}
	series := workload.SinusSeries(1000, 0.1)
	d.RegisterTable(workload.SeriesTable("sinus", series, 4))
	win, _ := workload.WindowedSeriesTable("sinus_windowed", series, 3, 4)
	d.RegisterTable(win)
	fmt.Println("demo loaded: tables iris, sinus, sinus_windowed; model iris_model (3 outputs)")
	fmt.Println(`try: SELECT * FROM iris MODEL JOIN iris_model PREDICT (sepal_length, sepal_width, petal_length, petal_width) LIMIT 5;`)
}

func seedDense(m *nn.Model) {
	seed := int64(42)
	for _, l := range m.Layers {
		d := l.(*nn.Dense)
		for i := range d.W.Data {
			seed = seed*6364136223846793005 + 1442695040888963407
			d.W.Data[i] = float32(int32(seed>>33)) / float32(1<<31) * 0.5
		}
	}
}
